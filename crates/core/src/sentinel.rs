//! Drift sentinel — the self-healing runtime's watchdog for *model* drift
//! (the straggler watchdog of §8 guards *deadline* drift; this guards the
//! predictions those deadlines come from).
//!
//! Every round that went through the full prediction + planning path
//! compares each task's Equation 2 prediction against its observed
//! execution time and folds the relative error into two EWMA families:
//! per task and per pattern class. A hysteresis band turns the noisy error
//! series into a clean trip/recover state machine:
//!
//! ```text
//!             max task EWMA > band_hi
//!   Clean ─────────────────────────────▶ Tripped
//!     ▲                                    │
//!     │  max task EWMA < band_lo           │ drift_streak ≥ sustain_rounds
//!     └────────────────────────────────────┤
//!                                          ▼
//!                                      step_down  (ride the hot-page rung,
//!                                                  then re-plan, re-assess)
//! ```
//!
//! On the trip *edge* — the single round where the band is first crossed —
//! the policy fires the §4 re-refinement actions once: quarantine the
//! drifting tasks' counter samples for that round, schedule a PMC
//! re-collection, reset their α refiners, and bump the estimator version
//! so every memoised quantification is discarded. While the trip is
//! *sustained*, the sentinel steps the degradation ladder down; once the
//! error falls back through the lower band and stays clean for
//! `clean_rounds` planned rounds, it steps the ladder back up.
//!
//! Rounds with no prediction (the hot-page fallback rungs) call
//! [`DriftSentinel::skip_round`] instead: streaks freeze rather than decay,
//! so time spent on a lower rung neither earns nor loses trust.

use std::collections::BTreeMap;

use merch_hm::checkpoint::{esc, p_bool, p_f64, p_u32, p_u64, p_usize, unesc, Reader};
use merch_hm::system::HmError;

/// Tuning knobs of the drift sentinel's state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SentinelConfig {
    /// EWMA smoothing factor: `err' = β·err + (1−β)·sample`. Lower reacts
    /// faster, higher remembers longer.
    pub ewma_beta: f64,
    /// Upper hysteresis band: a task EWMA above this trips the sentinel.
    pub band_hi: f64,
    /// Lower hysteresis band: the round error must fall below this for the
    /// sentinel to recover (band_lo < band_hi, or the hysteresis is void).
    pub band_lo: f64,
    /// Consecutive tripped *planned* rounds before the ladder steps down.
    pub sustain_rounds: u32,
    /// Consecutive clean planned rounds before the ladder steps back up.
    pub clean_rounds: u32,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        Self {
            ewma_beta: 0.5,
            band_hi: 0.35,
            band_lo: 0.15,
            sustain_rounds: 2,
            clean_rounds: 2,
        }
    }
}

/// One task's prediction-vs-observation sample for a round.
#[derive(Debug, Clone, Copy)]
pub struct TaskSample<'a> {
    /// Task index.
    pub task: usize,
    /// Pattern class of the task (dominant pattern among its objects).
    pub class: &'a str,
    /// The Equation 2 prediction logged for this round, ns.
    pub predicted_ns: f64,
    /// The observed execution time, ns.
    pub observed_ns: f64,
}

/// What the sentinel concluded from one round of samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SentinelVerdict {
    /// Max post-update task EWMA among this round's samples.
    pub round_err: f64,
    /// Sentinel state after the round.
    pub tripped: bool,
    /// This round crossed `band_hi` from below — fire the one-shot
    /// re-refinement actions (quarantine, re-collect, refiner reset,
    /// version bump).
    pub trip_edge: bool,
    /// This round fell back through `band_lo` — the drift cleared.
    pub recovered: bool,
    /// Tasks whose EWMA currently exceeds `band_hi` (the quarantine set on
    /// a trip edge).
    pub drifting_tasks: Vec<usize>,
    /// Sustained drift: step the degradation ladder down now.
    pub step_down: bool,
    /// Sustained health after a step-down: the ladder steps back up.
    pub step_up: bool,
}

/// The drift sentinel state machine. Serialized into the policy blob so a
/// restored run replays trips and recoveries bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftSentinel {
    /// Tuning knobs (not serialized with the state — construction-time).
    pub config: SentinelConfig,
    task_err: BTreeMap<usize, f64>,
    class_err: BTreeMap<String, f64>,
    tripped: bool,
    awaiting_step_up: bool,
    drift_streak: u32,
    clean_streak: u32,
    /// Counter samples discarded while their task was quarantined.
    pub quarantined_samples: u64,
    /// PMC re-collection passes performed to heal quarantined profiles.
    pub recollections: u64,
    /// Estimator-version bumps issued on trip edges (cache invalidations).
    pub version_bumps: u64,
    /// Times sustained drift stepped the degradation ladder down.
    pub ladder_steps_down: u64,
    /// Times sustained health stepped the ladder back up.
    pub ladder_steps_up: u64,
    /// Rounds attributed to a *hardware* shift (a device degradation window
    /// opening or closing) rather than model drift — see
    /// [`note_hardware_shift`](Self::note_hardware_shift).
    pub hardware_shifts: u64,
}

impl Default for DriftSentinel {
    fn default() -> Self {
        Self::new(SentinelConfig::default())
    }
}

impl DriftSentinel {
    /// Fresh sentinel in the clean state.
    pub fn new(config: SentinelConfig) -> Self {
        Self {
            config,
            task_err: BTreeMap::new(),
            class_err: BTreeMap::new(),
            tripped: false,
            awaiting_step_up: false,
            drift_streak: 0,
            clean_streak: 0,
            quarantined_samples: 0,
            recollections: 0,
            version_bumps: 0,
            ladder_steps_down: 0,
            ladder_steps_up: 0,
            hardware_shifts: 0,
        }
    }

    /// Relative prediction error, saturating misbehaviour: a non-finite
    /// prediction (NaN propagation from a poisoned feature) counts as a
    /// full 100 % error rather than poisoning the EWMA.
    pub fn rel_error(predicted_ns: f64, observed_ns: f64) -> f64 {
        let e = (predicted_ns - observed_ns).abs() / observed_ns.max(1e-9);
        if e.is_finite() {
            e
        } else {
            1.0
        }
    }

    /// Is the sentinel currently tripped (inside a drift excursion)?
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Did a step-down happen whose recovery has not yet been confirmed?
    pub fn awaiting_step_up(&self) -> bool {
        self.awaiting_step_up
    }

    /// Current EWMA relative error of `task`, if it has been observed.
    pub fn task_error(&self, task: usize) -> Option<f64> {
        self.task_err.get(&task).copied()
    }

    /// Current EWMA relative error of a pattern class, if observed.
    pub fn class_error(&self, class: &str) -> Option<f64> {
        self.class_err.get(class).copied()
    }

    /// A round ran on a fallback rung and produced no prediction: freeze
    /// the streaks (deliberately a no-op — the point is that callers state
    /// the case explicitly rather than silently feeding stale samples).
    pub fn skip_round(&mut self) {}

    /// The memory *hardware* shifted this round (a device degradation
    /// window opened or closed): the predictions the round was planned
    /// under describe a machine that no longer exists, so the error sample
    /// says nothing about the model. Streaks freeze exactly as in
    /// [`skip_round`](Self::skip_round) — the round neither earns nor loses
    /// trust — and the shift is counted so reports can distinguish "the
    /// model is wrong" from "the hardware got slower".
    pub fn note_hardware_shift(&mut self) {
        self.hardware_shifts += 1;
    }

    /// Fold one planned round's samples into the EWMAs and advance the
    /// state machine.
    pub fn observe_round(&mut self, samples: &[TaskSample<'_>]) -> SentinelVerdict {
        let beta = self.config.ewma_beta;
        let mut round_err = 0.0f64;
        for s in samples {
            let e = Self::rel_error(s.predicted_ns, s.observed_ns);
            let v = self
                .task_err
                .entry(s.task)
                .and_modify(|v| *v = beta * *v + (1.0 - beta) * e)
                .or_insert(e);
            round_err = round_err.max(*v);
            self.class_err
                .entry(s.class.to_string())
                .and_modify(|v| *v = beta * *v + (1.0 - beta) * e)
                .or_insert(e);
        }
        let mut verdict = SentinelVerdict {
            round_err,
            ..Default::default()
        };
        if !self.tripped && round_err > self.config.band_hi {
            self.tripped = true;
            verdict.trip_edge = true;
        } else if self.tripped && round_err < self.config.band_lo {
            self.tripped = false;
            verdict.recovered = true;
        }
        verdict.tripped = self.tripped;
        if self.tripped {
            self.drift_streak += 1;
            self.clean_streak = 0;
            verdict.drifting_tasks = samples
                .iter()
                .map(|s| s.task)
                .filter(|t| {
                    self.task_err
                        .get(t)
                        .is_some_and(|&v| v > self.config.band_hi)
                })
                .collect();
            if self.drift_streak >= self.config.sustain_rounds {
                self.drift_streak = 0;
                self.awaiting_step_up = true;
                self.ladder_steps_down += 1;
                verdict.step_down = true;
            }
        } else {
            self.drift_streak = 0;
            self.clean_streak += 1;
            if self.awaiting_step_up && self.clean_streak >= self.config.clean_rounds {
                self.awaiting_step_up = false;
                self.clean_streak = 0;
                self.ladder_steps_up += 1;
                verdict.step_up = true;
            }
        }
        verdict
    }

    /// Serialize the sentinel for the policy checkpoint blob (`{:?}`
    /// floats round-trip bit-exact).
    pub fn encode_state(&self, out: &mut String) {
        use std::fmt::Write as _;
        writeln!(
            out,
            "sentinel {:?} {:?} {:?} {} {}",
            self.config.ewma_beta,
            self.config.band_hi,
            self.config.band_lo,
            self.config.sustain_rounds,
            self.config.clean_rounds
        )
        .expect("writing to String cannot fail");
        writeln!(
            out,
            "sstate {} {} {} {}",
            u8::from(self.tripped),
            u8::from(self.awaiting_step_up),
            self.drift_streak,
            self.clean_streak
        )
        .expect("writing to String cannot fail");
        writeln!(
            out,
            "scnt {} {} {} {} {} {}",
            self.quarantined_samples,
            self.recollections,
            self.version_bumps,
            self.ladder_steps_down,
            self.ladder_steps_up,
            self.hardware_shifts
        )
        .expect("writing to String cannot fail");
        writeln!(out, "sterr {}", self.task_err.len()).expect("writing to String cannot fail");
        for (task, err) in &self.task_err {
            writeln!(out, "ste {task} {err:?}").expect("writing to String cannot fail");
        }
        writeln!(out, "scerr {}", self.class_err.len()).expect("writing to String cannot fail");
        for (class, err) in &self.class_err {
            writeln!(out, "sce {} {err:?}", esc(class)).expect("writing to String cannot fail");
        }
    }

    /// Inverse of [`encode_state`](Self::encode_state).
    pub fn decode_state(r: &mut Reader<'_>) -> Result<Self, HmError> {
        let t = r.line("sentinel", 5)?;
        let config = SentinelConfig {
            ewma_beta: p_f64(t[0])?,
            band_hi: p_f64(t[1])?,
            band_lo: p_f64(t[2])?,
            sustain_rounds: p_u32(t[3])?,
            clean_rounds: p_u32(t[4])?,
        };
        let t = r.line("sstate", 4)?;
        let (tripped, awaiting) = (p_bool(t[0])?, p_bool(t[1])?);
        let (drift_streak, clean_streak) = (p_u32(t[2])?, p_u32(t[3])?);
        let t = r.line("scnt", 6)?;
        let counters = [
            p_u64(t[0])?,
            p_u64(t[1])?,
            p_u64(t[2])?,
            p_u64(t[3])?,
            p_u64(t[4])?,
            p_u64(t[5])?,
        ];
        let t = r.line("sterr", 1)?;
        let n = p_usize(t[0])?;
        let mut task_err = BTreeMap::new();
        for _ in 0..n {
            let t = r.line("ste", 2)?;
            task_err.insert(p_usize(t[0])?, p_f64(t[1])?);
        }
        let t = r.line("scerr", 1)?;
        let n = p_usize(t[0])?;
        let mut class_err = BTreeMap::new();
        for _ in 0..n {
            let t = r.line("sce", 2)?;
            class_err.insert(unesc(t[0])?, p_f64(t[1])?);
        }
        Ok(Self {
            config,
            task_err,
            class_err,
            tripped,
            awaiting_step_up: awaiting,
            drift_streak,
            clean_streak,
            quarantined_samples: counters[0],
            recollections: counters[1],
            version_bumps: counters[2],
            ladder_steps_down: counters[3],
            ladder_steps_up: counters[4],
            hardware_shifts: counters[5],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SentinelConfig {
        SentinelConfig {
            ewma_beta: 0.0, // EWMA == latest sample: transitions are exact
            band_hi: 0.5,
            band_lo: 0.2,
            sustain_rounds: 2,
            clean_rounds: 2,
        }
    }

    fn sample(task: usize, err: f64) -> TaskSample<'static> {
        TaskSample {
            task,
            class: "random",
            predicted_ns: 1.0 + err,
            observed_ns: 1.0,
        }
    }

    #[test]
    fn trip_edge_fires_once_per_excursion() {
        let mut s = DriftSentinel::new(cfg());
        let v = s.observe_round(&[sample(0, 0.9)]);
        assert!(v.trip_edge && v.tripped);
        assert_eq!(v.drifting_tasks, vec![0]);
        // Still drifting: tripped, but no second edge.
        let v = s.observe_round(&[sample(0, 0.9)]);
        assert!(v.tripped && !v.trip_edge);
        // Sustained for 2 rounds → step down exactly once so far.
        assert!(v.step_down);
        assert_eq!(s.ladder_steps_down, 1);
    }

    #[test]
    fn hysteresis_band_holds_the_trip() {
        let mut s = DriftSentinel::new(cfg());
        s.observe_round(&[sample(0, 0.9)]);
        // Error inside (band_lo, band_hi): neither recovers nor re-trips.
        let v = s.observe_round(&[sample(0, 0.3)]);
        assert!(v.tripped && !v.trip_edge && !v.recovered);
        // Below band_lo: recovery edge.
        let v = s.observe_round(&[sample(0, 0.1)]);
        assert!(!v.tripped && v.recovered);
    }

    #[test]
    fn step_up_requires_clean_rounds_after_step_down() {
        let mut s = DriftSentinel::new(cfg());
        s.observe_round(&[sample(0, 0.9)]);
        let v = s.observe_round(&[sample(0, 0.9)]);
        assert!(v.step_down);
        assert!(s.awaiting_step_up());
        // One clean round is not enough …
        let v = s.observe_round(&[sample(0, 0.05)]);
        assert!(v.recovered && !v.step_up);
        // … two are.
        let v = s.observe_round(&[sample(0, 0.05)]);
        assert!(v.step_up);
        assert_eq!(s.ladder_steps_up, 1);
        assert!(!s.awaiting_step_up());
        // Without a pending step-down, clean rounds never step up again.
        let v = s.observe_round(&[sample(0, 0.05)]);
        assert!(!v.step_up);
    }

    #[test]
    fn skip_rounds_freeze_streaks() {
        let mut s = DriftSentinel::new(cfg());
        s.observe_round(&[sample(0, 0.9)]);
        // Fallback rounds in between must not accumulate drift streak.
        s.skip_round();
        s.skip_round();
        let v = s.observe_round(&[sample(0, 0.9)]);
        // Second *planned* drifting round → step down now, not earlier.
        assert!(v.step_down);
        assert_eq!(s.ladder_steps_down, 1);
    }

    #[test]
    fn hardware_shifts_freeze_streaks_and_are_counted() {
        let mut s = DriftSentinel::new(cfg());
        s.observe_round(&[sample(0, 0.9)]);
        // A degradation-window edge between the two drifting rounds is a
        // hardware event, not evidence of model drift: streaks freeze.
        s.note_hardware_shift();
        s.note_hardware_shift();
        assert_eq!(s.hardware_shifts, 2);
        let v = s.observe_round(&[sample(0, 0.9)]);
        assert!(v.step_down);
        assert_eq!(s.ladder_steps_down, 1);
    }

    #[test]
    fn non_finite_prediction_counts_as_full_error() {
        assert_eq!(DriftSentinel::rel_error(f64::NAN, 5.0), 1.0);
        assert_eq!(DriftSentinel::rel_error(f64::INFINITY, 5.0), 1.0);
        let e = DriftSentinel::rel_error(2.0, 1.0);
        assert!((e - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_class_ewma_tracked_separately() {
        let mut s = DriftSentinel::new(cfg());
        s.observe_round(&[
            TaskSample {
                task: 0,
                class: "random",
                predicted_ns: 2.0,
                observed_ns: 1.0,
            },
            TaskSample {
                task: 1,
                class: "stream",
                predicted_ns: 1.05,
                observed_ns: 1.0,
            },
        ]);
        assert!(s.class_error("random").unwrap() > 0.9);
        assert!(s.class_error("stream").unwrap() < 0.1);
        assert!(s.task_error(0).unwrap() > s.task_error(1).unwrap());
        assert!(s.class_error("stencil").is_none());
    }

    #[test]
    fn state_roundtrips_byte_identically() {
        let mut s = DriftSentinel::new(SentinelConfig::default());
        s.observe_round(&[sample(0, 0.9), sample(1, 0.01)]);
        s.observe_round(&[sample(0, 0.7)]);
        s.quarantined_samples = 3;
        s.recollections = 2;
        s.version_bumps = 1;
        let mut blob = String::new();
        s.encode_state(&mut blob);
        let decoded = DriftSentinel::decode_state(&mut Reader::new(&blob)).unwrap();
        assert_eq!(decoded, s);
        let mut blob2 = String::new();
        decoded.encode_state(&mut blob2);
        assert_eq!(blob, blob2);
    }
}
