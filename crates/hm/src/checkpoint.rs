//! Round-granular checkpointing and a write-ahead log for supervised runs.
//!
//! A long task-parallel job must survive its own death: losing the page
//! table, the Merchandiser quotas, and the online α refinements to a crash
//! means re-profiling from scratch (the cost that Online Application
//! Guidance for Heterogeneous Memory Systems and the PEBS-at-scale study
//! both warn about). This module serializes the full supervised-execution
//! state at every round boundary into an append-only WAL, so
//! `Executor::resume` can continue from the last completed round and
//! produce a `RunReport` bit-identical to an uninterrupted run.
//!
//! Design constraints:
//!
//! * **Determinism.** The vendored `serde` is a no-op stub, so records are
//!   hand-written line-oriented text. Floats are formatted with `{:?}`
//!   (shortest round-trip), which `f64::from_str` parses back bit-exact —
//!   including `NaN` and `inf`.
//! * **Torn-write tolerance.** Each WAL record is framed as
//!   `record <seq> <len> <fnv1a64-hex>` followed by exactly `len` payload
//!   bytes. Recovery scans the frames, drops any record whose checksum
//!   fails or whose payload is truncated, and restores the *last valid*
//!   one — a torn tail from the crash never poisons recovery.
//! * **Versioning.** Every payload starts with `merchckpt <version>`;
//!   decoding rejects versions it does not understand instead of
//!   misreading them.
//!
//! What is captured: `HmSystem` placement state (page tiers, weights,
//! access counters), migration counters, the fault-injector cursor
//! (plan, round clock, draw counters, crash latch, statistics), the
//! bandwidth-timeline bins and clock, every completed `RoundReport`, and
//! an opaque policy blob (`PlacementPolicy::save_state`). What is *not*
//! captured: the workload (rebuilt from its constructor seed and
//! fast-forwarded on resume) and derived caches such as α lookup tables
//! (lazily recomputed).

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::backoff::Backoff;
use crate::fault::FaultInjector;
use crate::runtime::{RoundReport, TaskResult};
use crate::system::{HmError, HmSystem};
use crate::telemetry::BandwidthTimeline;

/// Version of the checkpoint payload format this build reads and writes.
/// Version 2 added the transactional-epoch counters (`syscounters` gained
/// commit/rollback totals, `round` lines gained per-round counts).
/// Version 3 added the `dramquota` line (per-tenant service quotas survive
/// checkpoint/restore).
/// Version 4 added the device fault domain: the `offlined` line and the
/// `quarantine` page set, plus the widened `faultplan` / `faultstats`
/// lines (poisoning, degradation windows, capacity offlining).
/// Version 5 replaced the per-page `pages` / `p` section with the extent
/// framing `extents <runs> <pages>` + one `x` line per run (run starts are
/// implicit in page order), matching the run-length page engine.
/// Version 6 added the tenant fault-containment domain: the `breaker` line
/// (circuit-breaker frame — strikes, window cursor, attempt counter,
/// open-until step, probe budget, trip count — directly after `cursor`),
/// the `panic` / `stall` crash specs on `faultplan`, and two appended
/// tenant-fault counters on `faultstats`.
///
/// Decoding accepts every version `1 ..= CHECKPOINT_VERSION`; encoding
/// always writes the current version. One back-compat caveat: a v1–v3
/// payload whose fault injector was *armed* (`fault 1`) predates the v4
/// widened `faultplan` / `faultstats` lines and does not decode;
/// `fault 0` payloads of every version decode.
pub const CHECKPOINT_VERSION: u32 = 6;

/// Retries after a failed WAL write attempt before the checkpoint is
/// skipped for this round (the run continues; only recovery granularity
/// is lost).
pub const WAL_MAX_RETRIES: u32 = 3;

/// FNV-1a 64-bit checksum of a WAL payload.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A decode failure with context.
pub fn corrupt(msg: &str) -> HmError {
    HmError::CheckpointCorrupt(msg.to_string())
}

/// Parse an `f64` written with `{:?}` (round-trips bit-exact, including
/// `NaN` / `inf` / `-inf`).
pub fn p_f64(tok: &str) -> Result<f64, HmError> {
    tok.parse().map_err(|_| corrupt("bad f64 field"))
}

/// Parse a `u64` field.
pub fn p_u64(tok: &str) -> Result<u64, HmError> {
    tok.parse().map_err(|_| corrupt("bad u64 field"))
}

/// Parse a `u32` field.
pub fn p_u32(tok: &str) -> Result<u32, HmError> {
    tok.parse().map_err(|_| corrupt("bad u32 field"))
}

/// Parse a `usize` field.
pub fn p_usize(tok: &str) -> Result<usize, HmError> {
    tok.parse().map_err(|_| corrupt("bad usize field"))
}

/// Parse a boolean written as `0` / `1`.
pub fn p_bool(tok: &str) -> Result<bool, HmError> {
    match tok {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(corrupt("bad bool field")),
    }
}

/// Escape a name for embedding as one whitespace-free token (`%` then
/// `%25`-style hex for `%`, space, and control characters).
pub fn esc(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        if b == b'%' || !(0x21..=0x7E).contains(&b) {
            write!(out, "%{b:02X}").expect("writing to String cannot fail");
        } else {
            out.push(b as char);
        }
    }
    out
}

/// Inverse of [`esc`].
pub fn unesc(tok: &str) -> Result<String, HmError> {
    let mut bytes = Vec::with_capacity(tok.len());
    let raw = tok.as_bytes();
    let mut i = 0;
    while i < raw.len() {
        if raw[i] == b'%' {
            let hex = raw.get(i + 1..i + 3).ok_or_else(|| corrupt("bad escape"))?;
            let hex = std::str::from_utf8(hex).map_err(|_| corrupt("bad escape"))?;
            bytes.push(u8::from_str_radix(hex, 16).map_err(|_| corrupt("bad escape"))?);
            i += 3;
        } else {
            bytes.push(raw[i]);
            i += 1;
        }
    }
    String::from_utf8(bytes).map_err(|_| corrupt("bad escape"))
}

/// Line-oriented reader over a checkpoint payload: each record line is a
/// tag followed by whitespace-separated tokens.
pub struct Reader<'a> {
    lines: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Reader<'a> {
    /// Reader over `text`.
    pub fn new(text: &'a str) -> Self {
        Self {
            lines: text.lines(),
            line_no: 0,
        }
    }

    /// Next raw line (opaque policy-blob passthrough).
    pub fn raw(&mut self) -> Result<&'a str, HmError> {
        self.line_no += 1;
        self.lines
            .next()
            .ok_or_else(|| corrupt("unexpected end of checkpoint"))
    }

    /// Next line, asserting its tag and a minimum token count; returns the
    /// tokens *after* the tag.
    pub fn line(&mut self, tag: &str, min_tokens: usize) -> Result<Vec<&'a str>, HmError> {
        let line = self.raw()?;
        let mut toks = line.split_whitespace();
        let found = toks.next().unwrap_or("");
        if found != tag {
            return Err(HmError::CheckpointCorrupt(format!(
                "line {}: expected '{tag}', found '{found}'",
                self.line_no
            )));
        }
        let rest: Vec<&str> = toks.collect();
        if rest.len() < min_tokens {
            return Err(HmError::CheckpointCorrupt(format!(
                "line {}: '{tag}' needs {min_tokens} fields, has {}",
                self.line_no,
                rest.len()
            )));
        }
        Ok(rest)
    }
}

/// Persistent state of one tenant's three-state circuit breaker
/// (DESIGN.md §17). The *frame* is plain data so it can live in a
/// checkpoint; the Closed → Open → Half-Open transition logic lives in
/// `service::breaker`. Strike windows are measured in the tenant's own
/// attempt counter (a pure function of its entry stream, identical at any
/// `--jobs`); only `open_until` is denominated in service steps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerFrame {
    /// Strikes accumulated inside the current window.
    pub strikes: u32,
    /// Attempt counter value at which the current strike window opened.
    pub window_start: u64,
    /// Rounds this tenant has attempted (successful or struck).
    pub attempts: u64,
    /// While Open: the service step at which a Half-Open probe may start.
    pub open_until: u64,
    /// While Half-Open: probe rounds left before the breaker re-closes.
    pub probes_left: u32,
    /// Times the breaker tripped Closed → Open.
    pub trips: u32,
}

impl BreakerFrame {
    /// Serialize as the checkpoint `breaker` line payload.
    pub fn encode(&self, out: &mut String) {
        writeln!(
            out,
            "breaker {} {} {} {} {} {}",
            self.strikes,
            self.window_start,
            self.attempts,
            self.open_until,
            self.probes_left,
            self.trips
        )
        .expect("writing to String cannot fail");
    }

    /// Decode the `breaker` line written by [`encode`](Self::encode).
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, HmError> {
        let t = r.line("breaker", 6)?;
        Ok(Self {
            strikes: p_u32(t[0])?,
            window_start: p_u64(t[1])?,
            attempts: p_u64(t[2])?,
            open_until: p_u64(t[3])?,
            probes_left: p_u32(t[4])?,
            trips: p_u32(t[5])?,
        })
    }
}

/// A complete supervised-execution snapshot at a round boundary.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The next round to execute (every round `< next_round` is in
    /// [`completed`](Self::completed)).
    pub next_round: usize,
    /// The executor's telemetry-blackout cursor.
    pub blackout_cursor: usize,
    /// Full placement state (page table, counters, fault injector).
    pub sys: HmSystem,
    /// Bandwidth telemetry up to the boundary.
    pub timeline: BandwidthTimeline,
    /// Reports of the rounds already executed.
    pub completed: Vec<RoundReport>,
    /// Opaque policy state (`PlacementPolicy::save_state`), replayed into
    /// `restore_state` on resume. Empty for stateless policies.
    pub policy_state: String,
    /// Tenant circuit-breaker frame (zeroed outside the service's
    /// supervised-tenant path; always encoded so payloads stay
    /// deterministic).
    pub breaker: BreakerFrame,
}

impl Checkpoint {
    /// Serialize to the line-oriented payload text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        writeln!(out, "merchckpt {CHECKPOINT_VERSION}").expect("writing to String cannot fail");
        writeln!(out, "cursor {} {}", self.next_round, self.blackout_cursor)
            .expect("writing to String cannot fail");
        self.breaker.encode(&mut out);
        self.sys.encode_state(&mut out);
        self.timeline.encode_state(&mut out);
        writeln!(out, "completed {}", self.completed.len()).expect("writing to String cannot fail");
        for r in &self.completed {
            writeln!(
                out,
                "round {} {} {} {} {} {} {} {} {} {:?} {:?} {}",
                r.round,
                r.migration_pages,
                r.migration_attempts,
                r.failed_pages,
                r.degraded as u8,
                r.straggler_events,
                r.watchdog_pages,
                r.epoch_commits,
                r.epoch_rollbacks,
                r.migration_ns,
                r.round_time_ns,
                r.tasks.len()
            )
            .expect("writing to String cannot fail");
            for t in &r.tasks {
                writeln!(
                    out,
                    "task {} {:?} {:?} {:?} {:?} {:?} {:?} {:?}",
                    t.task,
                    t.time_ns,
                    t.cost.time_ns,
                    t.cost.dram_bytes,
                    t.cost.pm_bytes,
                    t.cost.dram_accesses,
                    t.cost.pm_accesses,
                    t.cost.compute_ns
                )
                .expect("writing to String cannot fail");
            }
        }
        let n_policy_lines = if self.policy_state.is_empty() {
            0
        } else {
            self.policy_state.lines().count()
        };
        writeln!(out, "policy {n_policy_lines}").expect("writing to String cannot fail");
        for line in self.policy_state.lines().take(n_policy_lines) {
            writeln!(out, "{line}").expect("writing to String cannot fail");
        }
        out.push_str("end\n");
        out
    }

    /// Decode a payload produced by [`encode`](Self::encode).
    pub fn decode(text: &str) -> Result<Self, HmError> {
        let mut r = Reader::new(text);
        let t = r.line("merchckpt", 1)?;
        let version = p_u32(t[0])?;
        if version == 0 || version > CHECKPOINT_VERSION {
            return Err(HmError::CheckpointCorrupt(format!(
                "unsupported checkpoint version {version} (this build reads 1..={CHECKPOINT_VERSION})"
            )));
        }
        let t = r.line("cursor", 2)?;
        let (next_round, blackout_cursor) = (p_usize(t[0])?, p_usize(t[1])?);
        let breaker = if version >= 6 {
            BreakerFrame::decode(&mut r)?
        } else {
            BreakerFrame::default()
        };
        let sys = HmSystem::decode_state_versioned(&mut r, version)?;
        let timeline = BandwidthTimeline::decode_state(&mut r)?;
        let t = r.line("completed", 1)?;
        let n_rounds = p_usize(t[0])?;
        // v1 round lines predate the per-round epoch counters: 10 tokens,
        // with migration_ns / round_time_ns / n_tasks shifted down two.
        let round_tokens = if version >= 2 { 12 } else { 10 };
        let mut completed = Vec::with_capacity(n_rounds);
        for _ in 0..n_rounds {
            let t = r.line("round", round_tokens)?;
            let n_tasks = p_usize(t[round_tokens - 1])?;
            let mut tasks = Vec::with_capacity(n_tasks);
            for _ in 0..n_tasks {
                let tt = r.line("task", 8)?;
                tasks.push(TaskResult {
                    task: p_usize(tt[0])?,
                    time_ns: p_f64(tt[1])?,
                    cost: crate::cost::PhaseCost {
                        time_ns: p_f64(tt[2])?,
                        dram_bytes: p_f64(tt[3])?,
                        pm_bytes: p_f64(tt[4])?,
                        dram_accesses: p_f64(tt[5])?,
                        pm_accesses: p_f64(tt[6])?,
                        compute_ns: p_f64(tt[7])?,
                    },
                });
            }
            let (epoch_commits, epoch_rollbacks) = if version >= 2 {
                (p_u64(t[7])?, p_u64(t[8])?)
            } else {
                (0, 0)
            };
            completed.push(RoundReport {
                round: p_usize(t[0])?,
                tasks,
                migration_pages: p_u64(t[1])?,
                migration_attempts: p_u64(t[2])?,
                failed_pages: p_u64(t[3])?,
                degraded: p_bool(t[4])?,
                straggler_events: p_u64(t[5])?,
                watchdog_pages: p_u64(t[6])?,
                epoch_commits,
                epoch_rollbacks,
                migration_ns: p_f64(t[round_tokens - 3])?,
                round_time_ns: p_f64(t[round_tokens - 2])?,
            });
        }
        let t = r.line("policy", 1)?;
        let n_policy_lines = p_usize(t[0])?;
        let mut policy_state = String::new();
        for _ in 0..n_policy_lines {
            policy_state.push_str(r.raw()?);
            policy_state.push('\n');
        }
        let end = r.raw()?;
        if end.trim() != "end" {
            return Err(corrupt("missing end marker"));
        }
        Ok(Self {
            next_round,
            blackout_cursor,
            sys,
            timeline,
            completed,
            policy_state,
            breaker,
        })
    }
}

/// Accounting of the WAL itself. Kept apart from `FaultStats` on purpose:
/// checkpointing is supervision overhead, and injecting checkpoint-write
/// failures must not perturb the run's own report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WalStats {
    /// Records successfully appended.
    pub records_appended: u64,
    /// Write attempts that failed and were retried.
    pub write_retries: u64,
    /// Checkpoints abandoned after exhausting the retry budget (the run
    /// continues; recovery granularity degrades to the previous record).
    pub skipped_checkpoints: u64,
    /// Simulated backoff delay charged between write retries, ns.
    pub backoff_ns: f64,
}

/// Append-only write-ahead log of [`Checkpoint`] records.
///
/// Frame format per record:
/// ```text
/// record <seq> <payload-len-bytes> <fnv1a64-hex>\n
/// <payload>
/// ```
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    seq: u64,
    /// Supervision-side accounting (never part of a `RunReport`).
    pub stats: WalStats,
}

impl Wal {
    /// Create (truncate) the WAL file at `path`.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self, HmError> {
        let path = path.into();
        std::fs::File::create(&path)
            .map_err(|e| HmError::CheckpointIo(format!("create {}: {e}", path.display())))?;
        Ok(Self {
            path,
            seq: 0,
            stats: WalStats::default(),
        })
    }

    /// The WAL file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one checkpoint record. With `injector` armed, each write
    /// attempt may be failed by the `checkpoint_write_fail_rate` fault and
    /// retried under [`Backoff`] (jitter keyed on the system seed and the
    /// record index, so the schedule replays deterministically); after
    /// [`WAL_MAX_RETRIES`] the record is *skipped* — supervision degrades
    /// gracefully rather than killing the run. Returns whether the record
    /// was durably written. Real I/O errors are retried the same way and
    /// reported as [`HmError::CheckpointIo`] when persistent.
    pub fn append(
        &mut self,
        ck: &Checkpoint,
        injector: Option<&FaultInjector>,
    ) -> Result<bool, HmError> {
        let payload = ck.encode();
        let record = self.seq;
        let frame = format!(
            "record {record} {} {:016x}\n{payload}",
            payload.len(),
            fnv1a64(payload.as_bytes())
        );
        let mut backoff = Backoff::new(WAL_MAX_RETRIES, ck.sys.seed() ^ record.rotate_left(41));
        let mut last_io_err: Option<String> = None;
        loop {
            self.stats.backoff_ns += backoff.delay_ns();
            let injected_fail =
                injector.is_some_and(|f| f.checkpoint_write_fails(record, backoff.attempt()));
            if !injected_fail {
                match self.write_frame(&frame) {
                    Ok(()) => {
                        self.seq += 1;
                        self.stats.records_appended += 1;
                        return Ok(true);
                    }
                    Err(e) => last_io_err = Some(e.to_string()),
                }
            }
            self.stats.write_retries += 1;
            if !backoff.retry() {
                // Adjust: the budget-exhausting bump above was not a retry.
                self.stats.write_retries -= 1;
                return match last_io_err {
                    // Persistent real I/O failure: surface it.
                    Some(e) => Err(HmError::CheckpointIo(format!(
                        "append to {}: {e}",
                        self.path.display()
                    ))),
                    // Injected-only failures: skip this checkpoint, run on.
                    None => {
                        self.stats.skipped_checkpoints += 1;
                        self.seq += 1; // keep fault draws per-record stable
                        Ok(false)
                    }
                };
            }
        }
    }

    fn write_frame(&self, frame: &str) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new().append(true).open(&self.path)?;
        f.write_all(frame.as_bytes())?;
        f.flush()
    }

    /// Scan a WAL file and return the last record that frames, checksums,
    /// and decodes cleanly — tolerating a torn tail from the crash.
    /// `Ok(None)` when the file is missing or holds no valid record.
    /// A dropped tail is reported through the telemetry warning channel
    /// (see [`latest_with_warning`](Self::latest_with_warning)).
    pub fn latest(path: impl AsRef<Path>) -> Result<Option<Checkpoint>, HmError> {
        let (best, warning) = Self::latest_with_warning(path)?;
        if let Some(w) = warning {
            w.emit();
        }
        Ok(best)
    }

    /// [`latest`](Self::latest), additionally returning a structured
    /// [`Warning`](crate::telemetry::Warning) when recovery had to drop a
    /// torn or garbled tail — the round the surviving checkpoint resumes
    /// at and how many bytes were discarded, instead of silent truncation.
    /// Mid-file records that merely fail their checksum or decode are
    /// skipped (the scan continues) and are not tail drops.
    pub fn latest_with_warning(
        path: impl AsRef<Path>,
    ) -> Result<(Option<Checkpoint>, Option<crate::telemetry::Warning>), HmError> {
        let path = path.as_ref();
        let data = match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((None, None)),
            Err(e) => {
                return Err(HmError::CheckpointIo(format!(
                    "read {}: {e}",
                    path.display()
                )))
            }
        };
        let mut best = None;
        let mut dropped: Option<(u64, &'static str)> = None;
        let mut rest = data.as_str();
        while let Some(nl) = rest.find('\n') {
            let header = &rest[..nl];
            let after = &rest[nl + 1..];
            let toks: Vec<&str> = header.split_whitespace().collect();
            if toks.len() != 4 || toks[0] != "record" {
                // Unframed garbage: nothing after it is trustworthy.
                dropped = Some((rest.len() as u64, "unframed garbage"));
                break;
            }
            let Ok(len) = toks[2].parse::<usize>() else {
                dropped = Some((rest.len() as u64, "bad frame length"));
                break;
            };
            if after.len() < len {
                dropped = Some((rest.len() as u64, "truncated payload"));
                break;
            }
            let payload = &after[..len];
            if format!("{:016x}", fnv1a64(payload.as_bytes())) == toks[3] {
                if let Ok(ck) = Checkpoint::decode(payload) {
                    best = Some(ck);
                }
            }
            rest = &after[len..];
        }
        if dropped.is_none() && !rest.is_empty() {
            // Leftover bytes without even a newline: a torn header.
            dropped = Some((rest.len() as u64, "torn frame header"));
        }
        let round = best.as_ref().map(|ck| ck.next_round as u64).unwrap_or(0);
        let warning =
            dropped.map(
                |(dropped_bytes, reason)| crate::telemetry::Warning::WalTornTail {
                    round,
                    dropped_bytes,
                    reason: reason.to_string(),
                },
            );
        Ok((best, warning))
    }
}

#[cfg(test)]
mod tests {
    use std::fmt::Write as _;
    use std::io::Write as _;

    use super::*;
    use crate::config::HmConfig;
    use crate::fault::FaultPlan;
    use crate::object::ObjectSpec;
    use crate::page::PAGE_SIZE;

    fn sample_checkpoint() -> Checkpoint {
        let mut sys = HmSystem::new(HmConfig::calibrated(16 * PAGE_SIZE, 128 * PAGE_SIZE), 7);
        sys.set_fault_plan(
            FaultPlan::none()
                .with_seed(3)
                .with_migration_failures(0.2, 2)
                .with_dram_pressure(2 * PAGE_SIZE, 3)
                .with_page_poison(0.1)
                .with_degradation(crate::config::Tier::Pm, 4, 1.5, 0.75)
                .with_dram_offlining(5, 2 * PAGE_SIZE),
        )
        .unwrap();
        let a = sys
            .allocate(
                &ObjectSpec::new("A name%1", 3 * PAGE_SIZE).with_skew(1.1),
                crate::config::Tier::Pm,
            )
            .unwrap();
        sys.begin_round(2);
        sys.record_accesses(a, 123.456);
        sys.migrate_object_pages(a, crate::config::Tier::Dram, 2);
        // Device fault state: a poisoned frame and some offlined capacity
        // must round-trip bit-exact through the v4 payload.
        sys.poison_page(1);
        sys.offline_dram(2 * PAGE_SIZE);
        let mut timeline = BandwidthTimeline::new(100.0);
        timeline.record_interval(0.0, 250.0, 1000.0, 500.0);
        timeline.advance(250.0);
        Checkpoint {
            next_round: 3,
            blackout_cursor: 1,
            sys,
            timeline,
            completed: vec![RoundReport {
                round: 2,
                tasks: vec![TaskResult {
                    task: 0,
                    time_ns: 1234.5,
                    cost: crate::cost::PhaseCost {
                        time_ns: 1234.5,
                        dram_bytes: 10.0,
                        pm_bytes: f64::NAN,
                        dram_accesses: 3.25,
                        pm_accesses: 0.0,
                        compute_ns: 99.0,
                    },
                }],
                migration_pages: 2,
                migration_attempts: 3,
                failed_pages: 0,
                degraded: true,
                straggler_events: 1,
                watchdog_pages: 4,
                epoch_commits: 1,
                epoch_rollbacks: 1,
                migration_ns: 5000.0,
                round_time_ns: 6234.5,
            }],
            policy_state: "alpha 0.5\nquota 17\n".to_string(),
            breaker: BreakerFrame {
                strikes: 2,
                window_start: 5,
                attempts: 7,
                open_until: 11,
                probes_left: 1,
                trips: 3,
            },
        }
    }

    #[test]
    fn encode_decode_roundtrip_is_bit_exact() {
        let ck = sample_checkpoint();
        let text = ck.encode();
        let back = Checkpoint::decode(&text).unwrap();
        // Re-encoding the decoded checkpoint must reproduce the payload
        // byte for byte — the strongest round-trip statement available.
        assert_eq!(back.encode(), text);
        assert_eq!(back.next_round, 3);
        assert_eq!(back.policy_state, ck.policy_state);
        assert_eq!(
            format!("{:?}", back.sys.fault_stats()),
            format!("{:?}", ck.sys.fault_stats())
        );
    }

    #[test]
    fn esc_roundtrip() {
        for s in ["plain", "with space", "pct%pct", "tab\tand\nnl", "héllo"] {
            assert_eq!(unesc(&esc(s)).unwrap(), s);
            assert!(!esc(s).contains(' '));
        }
    }

    /// Rewrite a v6 payload into the framing an older build would have
    /// written: strip the `breaker` line and the appended tenant-fault
    /// counters (v5), expand `extents`/`x` run lines back to `pages`/`p`
    /// per-page lines (v4), then progressively strip
    /// `quarantine`+`offlined` (v3), `dramquota` (v2), and the epoch
    /// counters in `syscounters` and `round` lines (v1).
    fn downgrade(text: &str, version: u32) -> String {
        let mut out = String::new();
        for line in text.lines() {
            let toks: Vec<&str> = line.split_whitespace().collect();
            match toks[0] {
                "merchckpt" => writeln!(out, "merchckpt {version}").unwrap(),
                "breaker" if version < 6 => {}
                "faultstats" if version < 6 => {
                    writeln!(out, "faultstats {}", toks[1..10].join(" ")).unwrap()
                }
                "extents" if version < 5 => writeln!(out, "pages {}", toks[2]).unwrap(),
                "x" if version < 5 => {
                    let len: u64 = toks[1].parse().unwrap();
                    for _ in 0..len {
                        writeln!(out, "p {}", toks[2..].join(" ")).unwrap();
                    }
                }
                "quarantine" | "offlined" if version < 4 => {}
                "dramquota" if version < 3 => {}
                "syscounters" if version < 2 => {
                    writeln!(out, "syscounters {}", toks[1..5].join(" ")).unwrap()
                }
                "round" if version < 2 => {
                    let mut t = toks[1..].to_vec();
                    t.remove(7); // epoch_commits
                    t.remove(7); // epoch_rollbacks
                    writeln!(out, "round {}", t.join(" ")).unwrap()
                }
                _ => writeln!(out, "{line}").unwrap(),
            }
        }
        out
    }

    #[test]
    fn legacy_versions_still_decode() {
        // Fault-free, quarantine-free system: the one shape every legacy
        // version can represent (v1–v3 fault-armed payloads predate the
        // v4 fault-line widening and are documented as undecodable).
        let mut ck = sample_checkpoint();
        ck.sys = HmSystem::new(HmConfig::calibrated(16 * PAGE_SIZE, 128 * PAGE_SIZE), 7);
        let a = ck
            .sys
            .allocate(
                &ObjectSpec::new("legacy", 3 * PAGE_SIZE).with_skew(1.1),
                crate::config::Tier::Pm,
            )
            .unwrap();
        ck.sys.begin_round(1);
        ck.sys.record_accesses(a, 55.5);
        ck.sys.migrate_object_pages(a, crate::config::Tier::Dram, 2);
        let v6 = ck.encode();
        for version in 1..=5u32 {
            let legacy = downgrade(&v6, version);
            let back = Checkpoint::decode(&legacy)
                .unwrap_or_else(|e| panic!("v{version} payload must decode: {e:?}"));
            // Page-table state is bit-identical however it was framed.
            assert_eq!(
                format!("{:?}", back.sys.page_table()),
                format!("{:?}", ck.sys.page_table()),
                "v{version} page table"
            );
            assert_eq!(back.next_round, ck.next_round, "v{version} cursor");
            assert_eq!(back.completed.len(), ck.completed.len());
            let (r0, o0) = (&back.completed[0], &ck.completed[0]);
            assert_eq!(r0.migration_pages, o0.migration_pages, "v{version}");
            assert_eq!(r0.round_time_ns, o0.round_time_ns, "v{version}");
            // Fields a version predates come back zeroed, not garbled.
            let want_epochs = if version >= 2 { o0.epoch_commits } else { 0 };
            assert_eq!(r0.epoch_commits, want_epochs, "v{version} epochs");
            // Breaker frames predate v6 and come back zeroed.
            assert_eq!(back.breaker, BreakerFrame::default(), "v{version} breaker");
            // Re-encoding always upgrades to the current framing.
            assert!(back.encode().starts_with("merchckpt 6\n"));
        }
    }

    #[test]
    fn version_mismatch_rejected() {
        let ck = sample_checkpoint();
        let text = ck.encode().replacen("merchckpt 6", "merchckpt 99", 1);
        assert!(matches!(
            Checkpoint::decode(&text),
            Err(HmError::CheckpointCorrupt(_))
        ));
    }

    #[test]
    fn wal_append_and_latest() {
        let dir = std::env::temp_dir().join(format!("merch-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("append_and_latest.wal");
        let mut wal = Wal::create(&path).unwrap();
        let mut ck = sample_checkpoint();
        assert!(wal.append(&ck, None).unwrap());
        ck.next_round = 4;
        assert!(wal.append(&ck, None).unwrap());
        let latest = Wal::latest(&path).unwrap().unwrap();
        assert_eq!(latest.next_round, 4);
        assert_eq!(wal.stats.records_appended, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_recovers_previous_record() {
        let dir = std::env::temp_dir().join(format!("merch-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn_tail.wal");
        let mut wal = Wal::create(&path).unwrap();
        let ck = sample_checkpoint();
        wal.append(&ck, None).unwrap();
        // Simulate a crash mid-write of the next record: append a valid
        // header whose payload is cut short.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"record 1 10000 0123456789abcdef\ntruncated...")
            .unwrap();
        drop(f);
        let (latest, warning) = Wal::latest_with_warning(&path).unwrap();
        assert_eq!(latest.unwrap().next_round, ck.next_round);
        // The dropped tail is reported as a structured warning, not
        // silently truncated: surviving round, dropped byte count, reason.
        let crate::telemetry::Warning::WalTornTail {
            round,
            dropped_bytes,
            reason,
        } = warning.expect("a torn tail must warn")
        else {
            panic!("expected a torn-tail warning");
        };
        assert_eq!(round, ck.next_round as u64);
        assert_eq!(
            dropped_bytes,
            ("record 1 10000 0123456789abcdef\ntruncated...").len() as u64
        );
        assert_eq!(reason, "truncated payload");
        // `latest` itself still recovers (and emits the warning).
        assert_eq!(
            Wal::latest(&path).unwrap().unwrap().next_round,
            ck.next_round
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clean_wal_yields_no_warning() {
        let dir = std::env::temp_dir().join(format!("merch-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean_no_warning.wal");
        let mut wal = Wal::create(&path).unwrap();
        // Empty WAL: no records, no warning.
        let (none, warning) = Wal::latest_with_warning(&path).unwrap();
        assert!(none.is_none() && warning.is_none());
        wal.append(&sample_checkpoint(), None).unwrap();
        let (some, warning) = Wal::latest_with_warning(&path).unwrap();
        assert!(some.is_some());
        assert!(warning.is_none(), "a clean WAL must not warn");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_none() {
        assert!(Wal::latest("/nonexistent/nowhere.wal").unwrap().is_none());
    }

    #[test]
    fn injected_write_failures_skip_but_run_continues() {
        let dir = std::env::temp_dir().join(format!("merch-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("injected_fail.wal");
        let mut wal = Wal::create(&path).unwrap();
        let ck = sample_checkpoint();
        let always_fail = FaultInjector::new(
            FaultPlan::none()
                .with_seed(9)
                .with_checkpoint_write_failures(1.0),
        );
        assert!(!wal.append(&ck, Some(&always_fail)).unwrap());
        assert_eq!(wal.stats.skipped_checkpoints, 1);
        assert_eq!(wal.stats.write_retries, WAL_MAX_RETRIES as u64);
        assert!(wal.stats.backoff_ns > 0.0);
        assert!(Wal::latest(&path).unwrap().is_none());
        // A fault-free append still lands afterwards.
        assert!(wal.append(&ck, None).unwrap());
        assert!(Wal::latest(&path).unwrap().is_some());
        std::fs::remove_file(&path).ok();
    }
}
