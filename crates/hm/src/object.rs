//! Data objects: the unit the user API registers for management.

use serde::{Deserialize, Serialize};

/// Opaque handle to an allocated data object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

/// Specification of an object to allocate: what the `LB_HM_config` user API
/// conveys ("*objects points to a list of user-specified data objects ...
/// and *sizes points to a list of their sizes", §4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectSpec {
    /// Name matching the kernel IR's object references.
    pub name: String,
    /// Size in bytes for the current input.
    pub size: u64,
    /// Which task owns/accesses the object, when task-private (None for
    /// shared objects such as SpGEMM's B matrix).
    pub owner_task: Option<usize>,
    /// Skew of per-page access weights: 0 = uniform (stream-like objects),
    /// larger values concentrate accesses on few pages (random-pattern
    /// objects with hot entries). Used to seed page weights.
    pub hot_page_skew: f64,
}

impl ObjectSpec {
    /// Uniform-access object.
    pub fn new(name: &str, size: u64) -> Self {
        Self {
            name: name.to_string(),
            size,
            owner_task: None,
            hot_page_skew: 0.0,
        }
    }

    /// Set the owning task.
    pub fn owned_by(mut self, task: usize) -> Self {
        self.owner_task = Some(task);
        self
    }

    /// Set hot-page skew.
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.hot_page_skew = skew;
        self
    }
}

/// An allocated data object: spec plus its page range.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataObject {
    /// Handle.
    pub id: ObjectId,
    /// Name from the spec.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// First page (global page id).
    pub first_page: u64,
    /// Number of 4 KiB pages.
    pub num_pages: u64,
    /// Owning task, if private.
    pub owner_task: Option<usize>,
}

impl DataObject {
    /// Global page ids backing this object.
    pub fn pages(&self) -> std::ops::Range<u64> {
        self.first_page..self.first_page + self.num_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders() {
        let s = ObjectSpec::new("PSI", 4096).owned_by(3).with_skew(1.2);
        assert_eq!(s.owner_task, Some(3));
        assert!((s.hot_page_skew - 1.2).abs() < 1e-12);
    }

    #[test]
    fn page_range() {
        let o = DataObject {
            id: ObjectId(0),
            name: "H".into(),
            size: 10_000,
            first_page: 5,
            num_pages: 3,
            owner_task: None,
        };
        assert_eq!(o.pages(), 5..8);
    }
}
