//! Transactional migration epochs.
//!
//! A round's page moves execute inside an *epoch*: every migration first
//! journals its intent and (on first touch) the page's pre-epoch state into
//! an undo map. When the epoch ends cleanly the moves commit; when it ends
//! torn — the scripted crash latched mid-batch, or a `MigrationFailed`
//! burst abandoned more pages than it moved — the undo map rolls the page
//! table back to a placement bitwise identical to the pre-epoch snapshot
//! (aggregates re-flushed, so the O(1) counters stay provably clean).
//! Physical history is *not* rewound: migration attempts, backoff delay and
//! fault statistics already happened and stay charged as overhead.
//!
//! The intent journal reuses the WAL frame (`record <round> <len>
//! <fnv1a64-hex>` + payload) so the same tooling that inspects checkpoint
//! records can inspect epoch journals; see `DESIGN.md` §12.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::checkpoint::{corrupt, fnv1a64, p_u32, p_u64, p_usize, Reader};
use crate::config::Tier;
use crate::page::PageId;
use crate::system::HmError;

/// Version of the epoch-journal payload format.
pub const EPOCH_JOURNAL_VERSION: u32 = 1;

/// One journaled migration intent: move `page` from `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochIntent {
    /// The page being moved.
    pub page: PageId,
    /// Tier the page sat on when the intent was journaled.
    pub from: Tier,
    /// Requested destination tier.
    pub to: Tier,
}

/// How an epoch ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpochOutcome {
    /// The epoch touched no page: nothing to commit, nothing to undo.
    Clean,
    /// The epoch's moves were kept.
    Committed,
    /// The epoch ended torn (crash latch or a failure burst) and every
    /// touched page was restored to its pre-epoch state.
    RolledBack,
}

impl EpochOutcome {
    fn token(self) -> &'static str {
        match self {
            EpochOutcome::Clean => "clean",
            EpochOutcome::Committed => "commit",
            EpochOutcome::RolledBack => "rollback",
        }
    }

    fn from_token(tok: &str) -> Result<Self, HmError> {
        match tok {
            "clean" => Ok(EpochOutcome::Clean),
            "commit" => Ok(EpochOutcome::Committed),
            "rollback" => Ok(EpochOutcome::RolledBack),
            _ => Err(corrupt("bad epoch outcome token")),
        }
    }
}

fn tier_tag(t: Tier) -> &'static str {
    match t {
        Tier::Dram => "D",
        Tier::Pm => "P",
    }
}

fn tier_from_tag(tok: &str) -> Result<Tier, HmError> {
    match tok {
        "D" => Ok(Tier::Dram),
        "P" => Ok(Tier::Pm),
        _ => Err(corrupt("bad tier tag in epoch journal")),
    }
}

/// In-flight epoch state owned by `HmSystem` between `begin_epoch` and
/// `end_epoch`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub(crate) struct EpochState {
    /// Round the epoch belongs to (journal frame sequence number).
    pub round: u64,
    /// First-touch undo map: page → (tier, migrations counter) before the
    /// epoch touched it. BTreeMap so rollback order is deterministic.
    pub undo: BTreeMap<PageId, (Tier, u32)>,
    /// Every journaled intent, in order.
    pub intents: Vec<EpochIntent>,
    /// Pages successfully moved inside the epoch.
    pub pages_moved: u64,
    /// Pages abandoned inside the epoch after exhausting retries.
    pub pages_failed: u64,
}

impl EpochState {
    pub fn new(round: u64) -> Self {
        Self {
            round,
            ..Self::default()
        }
    }

    /// Journal one intent; on first touch of `page`, capture its undo state.
    pub fn note_intent(&mut self, page: PageId, from: Tier, to: Tier, migrations: u32) {
        self.undo.entry(page).or_insert((from, migrations));
        self.intents.push(EpochIntent { page, from, to });
    }

    /// Render the epoch's intent journal in the WAL frame format.
    pub fn journal(&self, outcome: EpochOutcome) -> String {
        let mut payload = String::new();
        writeln!(
            payload,
            "merchepoch {EPOCH_JOURNAL_VERSION} {} {} {}",
            self.round,
            outcome.token(),
            self.intents.len()
        )
        .expect("writing to String cannot fail");
        for i in &self.intents {
            writeln!(
                payload,
                "intent {} {} {}",
                i.page,
                tier_tag(i.from),
                tier_tag(i.to)
            )
            .expect("writing to String cannot fail");
        }
        format!(
            "record {} {} {:016x}\n{payload}",
            self.round,
            payload.len(),
            fnv1a64(payload.as_bytes())
        )
    }
}

/// Decode an epoch journal written by [`EpochState::journal`]: verify the
/// frame (length + checksum) and parse the payload back into the round,
/// the outcome, and the intent list.
pub fn decode_journal(text: &str) -> Result<(u64, EpochOutcome, Vec<EpochIntent>), HmError> {
    let nl = text
        .find('\n')
        .ok_or_else(|| corrupt("missing frame header"))?;
    let header: Vec<&str> = text[..nl].split_whitespace().collect();
    if header.len() != 4 || header[0] != "record" {
        return Err(corrupt("bad epoch journal frame header"));
    }
    let len = p_usize(header[2])?;
    let payload = text
        .get(nl + 1..nl + 1 + len)
        .ok_or_else(|| corrupt("truncated epoch journal payload"))?;
    if format!("{:016x}", fnv1a64(payload.as_bytes())) != header[3] {
        return Err(corrupt("epoch journal checksum mismatch"));
    }
    let mut r = Reader::new(payload);
    let t = r.line("merchepoch", 4)?;
    let version = p_u32(t[0])?;
    if version != EPOCH_JOURNAL_VERSION {
        return Err(HmError::CheckpointCorrupt(format!(
            "unsupported epoch journal version {version} (this build reads {EPOCH_JOURNAL_VERSION})"
        )));
    }
    let round = p_u64(t[1])?;
    let outcome = EpochOutcome::from_token(t[2])?;
    let n = p_usize(t[3])?;
    let mut intents = Vec::with_capacity(n);
    for _ in 0..n {
        let t = r.line("intent", 3)?;
        intents.push(EpochIntent {
            page: p_u64(t[0])?,
            from: tier_from_tag(t[1])?,
            to: tier_from_tag(t[2])?,
        });
    }
    Ok((round, outcome, intents))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_roundtrips() {
        let mut ep = EpochState::new(7);
        ep.note_intent(3, Tier::Pm, Tier::Dram, 0);
        ep.note_intent(5, Tier::Dram, Tier::Pm, 2);
        ep.note_intent(3, Tier::Dram, Tier::Pm, 1); // re-touch: one undo entry
        assert_eq!(ep.undo.len(), 2);
        assert_eq!(ep.undo[&3], (Tier::Pm, 0), "undo keeps the first touch");
        for outcome in [
            EpochOutcome::Clean,
            EpochOutcome::Committed,
            EpochOutcome::RolledBack,
        ] {
            let text = ep.journal(outcome);
            let (round, back, intents) = decode_journal(&text).unwrap();
            assert_eq!(round, 7);
            assert_eq!(back, outcome);
            assert_eq!(intents, ep.intents);
        }
    }

    #[test]
    fn empty_journal_roundtrips() {
        let ep = EpochState::new(0);
        let (round, outcome, intents) = decode_journal(&ep.journal(EpochOutcome::Clean)).unwrap();
        assert_eq!((round, outcome), (0, EpochOutcome::Clean));
        assert!(intents.is_empty());
    }

    #[test]
    fn corrupt_journals_rejected() {
        let mut ep = EpochState::new(1);
        ep.note_intent(0, Tier::Pm, Tier::Dram, 0);
        let good = ep.journal(EpochOutcome::Committed);
        // Flip a payload byte: the checksum must catch it.
        let bad = good.replacen("intent 0", "intent 9", 1);
        assert!(decode_journal(&bad).is_err());
        // Truncate the payload: the frame length must catch it.
        let torn = &good[..good.len() - 4];
        assert!(decode_journal(torn).is_err());
        // Garbage header.
        assert!(decode_journal("not a frame\n").is_err());
    }
}
