//! Pages and the emulated page table.
//!
//! Each 4 KiB page carries the state real tiering systems read and write:
//! current tier, an *accessed* bit (the PTE bit profilers scan and reset),
//! and a saturating access counter. A per-page *weight* models how the
//! object's accesses distribute over its pages (uniform for streaming
//! objects, skewed for random-pattern objects with hot entries) — this is
//! what makes hot-page detection meaningful in the emulation.
//!
//! The table keeps incremental accounting alongside the flat page vector:
//! exact per-tier page counters (so `bytes_in` is O(1)) and per-object
//! weighted-residency aggregates (so `weighted_fraction_in` over a whole
//! object is O(1) between placement changes). Tier and weight are therefore
//! private — all writes go through [`PageTable::set_tier`] /
//! [`PageTable::set_weight`] so the aggregates can never silently drift
//! from the pages.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::config::Tier;
use crate::object::ObjectId;

/// Page size of the emulated system (4 KiB, as in the paper's profilers).
pub const PAGE_SIZE: u64 = 4096;

/// Pages per 2 MiB huge region (Thermostat samples one 4 KiB page per 2 MiB).
pub const PAGES_PER_HUGE_REGION: u64 = (2 << 20) / PAGE_SIZE;

/// Global page identifier.
pub type PageId = u64;

fn tier_idx(tier: Tier) -> usize {
    match tier {
        Tier::Dram => 0,
        Tier::Pm => 1,
    }
}

/// Per-page metadata (an emulated PTE plus profiling counters).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PageInfo {
    /// Object the page belongs to.
    pub object: ObjectId,
    /// Tier the page currently resides on. Private: tier changes must go
    /// through [`PageTable::set_tier`] to keep the tier counters exact.
    tier: Tier,
    /// Fraction of the object's accesses that land on this page (sums to 1
    /// over the object's pages). Private: weight changes must go through
    /// [`PageTable::set_weight`] to invalidate the object aggregate.
    weight: f64,
    /// Emulated PTE accessed bit; set by execution, cleared by profilers.
    pub accessed: bool,
    /// Accumulated access count since the last profiler reset.
    pub access_count: f64,
    /// Lifetime migration count (for overhead accounting / tests).
    pub migrations: u32,
}

impl PageInfo {
    /// Tier the page currently resides on.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Fraction of the object's accesses landing on this page.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Rebuild a fully-specified page (checkpoint restore only; normal
    /// allocation goes through
    /// [`extend_for_object`](PageTable::extend_for_object)).
    pub fn restore(
        object: ObjectId,
        tier: Tier,
        weight: f64,
        accessed: bool,
        access_count: f64,
        migrations: u32,
    ) -> Self {
        Self {
            object,
            tier,
            weight,
            accessed,
            access_count,
            migrations,
        }
    }
}

/// Per-object weighted-residency aggregate: the running sums
/// `weighted_fraction_in` needs, maintained incrementally so whole-object
/// queries skip the page scan.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ObjAgg {
    /// First page of the object's range.
    first_page: PageId,
    /// Pages in the object's range.
    num_pages: u64,
    /// Sum of page weights over the range, accumulated in page-id order.
    weight_total: f64,
    /// Per-tier weight sums (indexed by `tier_idx`), each accumulated in
    /// page-id order over the pages of that tier — bitwise identical to
    /// the sums a fresh range scan produces.
    weight_in: [f64; 2],
    /// True when a tier/weight write invalidated the float sums.
    dirty: bool,
}

/// The emulated page table: flat vector of [`PageInfo`] indexed by
/// [`PageId`], plus incremental tier accounting.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct PageTable {
    pages: Vec<PageInfo>,
    /// Pages resident per tier (indexed by `tier_idx`). Exact integers,
    /// updated eagerly on every tier change — `bytes_in` never scans.
    tier_pages: [u64; 2],
    /// Per-object aggregates, indexed by `ObjectId`.
    aggs: Vec<ObjAgg>,
    /// Objects whose aggregate needs recomputation (deduplicated via the
    /// per-aggregate `dirty` flag).
    dirty: Vec<u32>,
    /// Set when pages were appended in a layout the per-object aggregates
    /// cannot represent (non-dense object ids). All fraction queries then
    /// take the scan path; tier counters stay exact regardless.
    irregular: bool,
    /// Pages whose DRAM frame was poisoned by an uncorrectable ECC error.
    /// Quarantined pages are permanently pinned off DRAM; the set is part
    /// of the derived `Debug` output, so every bitwise page-table
    /// comparison (epoch rollback, replay determinism) covers it. Ordered
    /// so serialization is canonical.
    quarantine: BTreeSet<PageId>,
}

impl PageTable {
    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Append pages for a new object; returns the first new page id.
    pub fn extend_for_object(
        &mut self,
        object: ObjectId,
        tier: Tier,
        weights: impl IntoIterator<Item = f64>,
    ) -> PageId {
        let first = self.pages.len() as PageId;
        let mut weight_total = 0.0;
        for w in weights {
            self.pages.push(PageInfo {
                object,
                tier,
                weight: w,
                accessed: false,
                access_count: 0.0,
                migrations: 0,
            });
            weight_total += w;
        }
        let num_pages = self.pages.len() as PageId - first;
        self.tier_pages[tier_idx(tier)] += num_pages;
        if object.0 as usize == self.aggs.len() {
            // All pages start on one tier, so that tier's in-order sum is
            // exactly the in-order total.
            let mut weight_in = [0.0; 2];
            weight_in[tier_idx(tier)] = weight_total;
            self.aggs.push(ObjAgg {
                first_page: first,
                num_pages,
                weight_total,
                weight_in,
                dirty: false,
            });
        } else {
            self.irregular = true;
        }
        first
    }

    /// Append one fully-specified page (checkpoint restore only; normal
    /// allocation goes through [`extend_for_object`](Self::extend_for_object)).
    /// Call [`flush_aggregates`](Self::flush_aggregates) once after the
    /// last page so whole-object queries regain their O(1) path.
    pub fn push_raw(&mut self, page: PageInfo) {
        let id = self.pages.len() as PageId;
        self.tier_pages[tier_idx(page.tier)] += 1;
        let oi = page.object.0 as usize;
        if oi == self.aggs.len() {
            self.aggs.push(ObjAgg {
                first_page: id,
                num_pages: 1,
                weight_total: 0.0,
                weight_in: [0.0; 2],
                dirty: true,
            });
            self.dirty.push(page.object.0);
        } else if oi + 1 == self.aggs.len()
            && self.aggs[oi].first_page + self.aggs[oi].num_pages == id
        {
            self.aggs[oi].num_pages += 1;
        } else {
            self.irregular = true;
        }
        self.pages.push(page);
    }

    /// Immutable page lookup.
    pub fn get(&self, id: PageId) -> &PageInfo {
        &self.pages[id as usize]
    }

    /// Mutable page lookup (profiling state only — tier and weight are
    /// private and writable solely through [`set_tier`](Self::set_tier) /
    /// [`set_weight`](Self::set_weight)).
    pub fn get_mut(&mut self, id: PageId) -> &mut PageInfo {
        &mut self.pages[id as usize]
    }

    /// Iterate over `(PageId, &PageInfo)`.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, &PageInfo)> {
        self.pages.iter().enumerate().map(|(i, p)| (i as PageId, p))
    }

    fn mark_dirty(&mut self, object: ObjectId) {
        match self.aggs.get_mut(object.0 as usize) {
            Some(a) if !a.dirty => {
                a.dirty = true;
                self.dirty.push(object.0);
            }
            Some(_) => {}
            None => self.irregular = true,
        }
    }

    /// Move page `id` to `to`, keeping the tier counters exact and marking
    /// the owning object's aggregate for recomputation.
    pub fn set_tier(&mut self, id: PageId, to: Tier) {
        let p = &mut self.pages[id as usize];
        if p.tier == to {
            return;
        }
        self.tier_pages[tier_idx(p.tier)] -= 1;
        self.tier_pages[tier_idx(to)] += 1;
        p.tier = to;
        let object = p.object;
        self.mark_dirty(object);
    }

    /// Overwrite page `id`'s weight, marking the owning object's aggregate
    /// for recomputation.
    pub fn set_weight(&mut self, id: PageId, weight: f64) {
        let p = &mut self.pages[id as usize];
        p.weight = weight;
        let object = p.object;
        self.mark_dirty(object);
    }

    /// Recompute every dirty object aggregate by rescanning its range in
    /// page-id order. Batched callers (migration loops) call this once at
    /// the end; a query against a still-dirty object falls back to the
    /// scan and stays correct either way.
    pub fn flush_aggregates(&mut self) {
        while let Some(oi) = self.dirty.pop() {
            let Some(a) = self.aggs.get(oi as usize) else {
                continue;
            };
            let (first, num) = (a.first_page, a.num_pages);
            let mut weight_total = 0.0;
            let mut weight_in = [0.0; 2];
            for id in first..first + num {
                let p = &self.pages[id as usize];
                weight_total += p.weight;
                weight_in[tier_idx(p.tier)] += p.weight;
            }
            let a = &mut self.aggs[oi as usize];
            a.weight_total = weight_total;
            a.weight_in = weight_in;
            a.dirty = false;
        }
    }

    /// True when every per-object aggregate is valid: no pending dirty
    /// entries and a regular (dense object id) layout. Whole-object
    /// [`weighted_fraction_in`](Self::weighted_fraction_in) queries then
    /// all take the O(1) aggregate path. Batched mutators uphold this by
    /// flushing once per batch; fraction-heavy callers assert it in debug
    /// builds.
    pub fn aggregates_clean(&self) -> bool {
        self.dirty.is_empty() && !self.irregular
    }

    /// Record `accesses` object-level accesses over the page range
    /// `range`, distributing them by page weight. The accessed bit is only
    /// set when at least half an access is expected to land on the page
    /// this interval — a page touched once every hundred rounds does not
    /// have its PTE bit set every round on real hardware.
    pub fn record_accesses(&mut self, range: std::ops::Range<PageId>, accesses: f64) {
        for id in range {
            let p = &mut self.pages[id as usize];
            let share = accesses * p.weight;
            if share > 0.0 {
                p.access_count += share;
                if share >= 0.5 {
                    p.accessed = true;
                }
            }
        }
    }

    /// Weighted fraction of the range currently resident in `tier`. O(1)
    /// when the range is exactly one object with a clean aggregate (the
    /// policy's per-object queries); otherwise falls back to the scan,
    /// which accumulates in the same page-id order and therefore returns
    /// the bitwise-identical value.
    pub fn weighted_fraction_in(&self, range: std::ops::Range<PageId>, tier: Tier) -> f64 {
        if !self.irregular && range.start < range.end && (range.start as usize) < self.pages.len() {
            let oi = self.pages[range.start as usize].object.0 as usize;
            if let Some(a) = self.aggs.get(oi) {
                if !a.dirty && a.first_page == range.start && a.num_pages == range.end - range.start
                {
                    return if a.weight_total > 0.0 {
                        a.weight_in[tier_idx(tier)] / a.weight_total
                    } else {
                        0.0
                    };
                }
            }
        }
        let mut total = 0.0;
        let mut in_tier = 0.0;
        for id in range {
            let p = &self.pages[id as usize];
            total += p.weight;
            if p.tier == tier {
                in_tier += p.weight;
            }
        }
        if total > 0.0 {
            in_tier / total
        } else {
            0.0
        }
    }

    /// Quarantine page `id`: its DRAM frame is dead and the page may never
    /// reside on DRAM again. Returns `true` when the page was newly
    /// quarantined. Does not move the page — the system remaps it via
    /// [`set_tier`](Self::set_tier) and charges the repair cost.
    pub fn quarantine_page(&mut self, id: PageId) -> bool {
        debug_assert!((id as usize) < self.pages.len());
        self.quarantine.insert(id)
    }

    /// Is page `id` quarantined (its DRAM frame poisoned)?
    pub fn is_quarantined(&self, id: PageId) -> bool {
        self.quarantine.contains(&id)
    }

    /// Quarantined pages in ascending page-id order.
    pub fn quarantined(&self) -> impl Iterator<Item = PageId> + '_ {
        self.quarantine.iter().copied()
    }

    /// Number of quarantined pages.
    pub fn quarantined_count(&self) -> u64 {
        self.quarantine.len() as u64
    }

    /// Bytes of DRAM lost to poisoned frames (each dead frame shrinks the
    /// physical pool by one page).
    pub fn quarantine_bytes(&self) -> u64 {
        self.quarantine.len() as u64 * PAGE_SIZE
    }

    /// Bytes of the whole table resident in `tier`. O(1) from the
    /// incremental tier counters.
    pub fn bytes_in(&self, tier: Tier) -> u64 {
        self.tier_pages[tier_idx(tier)] * PAGE_SIZE
    }

    /// From-scratch recount of [`bytes_in`](Self::bytes_in) — the O(n)
    /// scan the incremental counters replaced, kept for verification
    /// (proptests, benches).
    pub fn recount_bytes_in(&self, tier: Tier) -> u64 {
        self.pages.iter().filter(|p| p.tier == tier).count() as u64 * PAGE_SIZE
    }
}

/// Generate per-page weights for an object of `num_pages` pages with the
/// given skew: weight(page k) ∝ 1 / (k_rank + 1)^skew (Zipf-like), with rank
/// order shuffled deterministically by `seed` so hot pages are not simply
/// the object's prefix. Skew 0 yields uniform weights.
pub fn page_weights(num_pages: u64, skew: f64, seed: u64) -> Vec<f64> {
    let n = num_pages.max(1) as usize;
    if skew <= 0.0 {
        return vec![1.0 / n as f64; n];
    }
    let mut raw: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(skew)).collect();
    // Deterministic Fisher-Yates shuffle with a splitmix64 stream.
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        raw.swap(i, j);
    }
    let sum: f64 = raw.iter().sum();
    raw.iter_mut().for_each(|w| *w /= sum);
    raw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one_and_uniform_without_skew() {
        let w = page_weights(10, 0.0, 7);
        assert_eq!(w.len(), 10);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w.iter().all(|&x| (x - 0.1).abs() < 1e-12));
    }

    #[test]
    fn skewed_weights_concentrate() {
        let w = page_weights(100, 1.1, 42);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let mut sorted = w.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        let top10: f64 = sorted[..10].iter().sum();
        assert!(top10 > 0.35, "top-10 share {top10}");
    }

    #[test]
    fn weights_deterministic_per_seed() {
        assert_eq!(page_weights(32, 0.9, 5), page_weights(32, 0.9, 5));
        assert_ne!(page_weights(32, 0.9, 5), page_weights(32, 0.9, 6));
    }

    #[test]
    fn record_and_fraction() {
        let mut pt = PageTable::default();
        let first = pt.extend_for_object(ObjectId(0), Tier::Pm, vec![0.5, 0.3, 0.2]);
        assert_eq!(first, 0);
        pt.record_accesses(0..3, 100.0);
        assert!((pt.get(0).access_count - 50.0).abs() < 1e-12);
        assert!(pt.get(1).accessed);
        pt.set_tier(1, Tier::Dram);
        let f = pt.weighted_fraction_in(0..3, Tier::Dram);
        assert!((f - 0.3).abs() < 1e-12);
        assert_eq!(pt.bytes_in(Tier::Dram), PAGE_SIZE);
    }

    #[test]
    fn fast_path_matches_scan_after_flush() {
        let mut pt = PageTable::default();
        pt.extend_for_object(ObjectId(0), Tier::Pm, vec![0.4, 0.1, 0.25, 0.25]);
        pt.extend_for_object(ObjectId(1), Tier::Pm, vec![0.7, 0.3]);
        pt.set_tier(0, Tier::Dram);
        pt.set_tier(2, Tier::Dram);
        pt.set_tier(5, Tier::Dram);
        // Dirty: the query takes the scan path.
        let dirty_f = pt.weighted_fraction_in(0..4, Tier::Dram);
        pt.flush_aggregates();
        // Clean: the aggregate path must return the bit-identical value.
        let clean_f = pt.weighted_fraction_in(0..4, Tier::Dram);
        assert_eq!(dirty_f.to_bits(), clean_f.to_bits());
        assert_eq!(
            pt.weighted_fraction_in(4..6, Tier::Dram).to_bits(),
            0.3f64.to_bits()
        );
        // Counters always exact, flushed or not.
        assert_eq!(pt.bytes_in(Tier::Dram), pt.recount_bytes_in(Tier::Dram));
        assert_eq!(pt.bytes_in(Tier::Pm), pt.recount_bytes_in(Tier::Pm));
    }

    #[test]
    fn partial_range_takes_scan_path() {
        let mut pt = PageTable::default();
        pt.extend_for_object(ObjectId(0), Tier::Pm, vec![0.5, 0.3, 0.2]);
        pt.set_tier(0, Tier::Dram);
        pt.flush_aggregates();
        // A sub-range never matches an aggregate; the scan must serve it.
        let f = pt.weighted_fraction_in(0..2, Tier::Dram);
        assert!((f - 0.5 / 0.8).abs() < 1e-12);
    }

    #[test]
    fn set_weight_invalidates_aggregate() {
        let mut pt = PageTable::default();
        pt.extend_for_object(ObjectId(0), Tier::Pm, vec![0.5, 0.5]);
        pt.set_tier(0, Tier::Dram);
        pt.flush_aggregates();
        assert_eq!(pt.weighted_fraction_in(0..2, Tier::Dram), 0.5);
        pt.set_weight(0, 0.9);
        pt.set_weight(1, 0.1);
        assert_eq!(pt.weighted_fraction_in(0..2, Tier::Dram), 0.9);
        pt.flush_aggregates();
        assert_eq!(pt.weighted_fraction_in(0..2, Tier::Dram), 0.9);
    }

    #[test]
    fn zero_weight_pages_not_marked_accessed() {
        let mut pt = PageTable::default();
        pt.extend_for_object(ObjectId(0), Tier::Pm, vec![1.0, 0.0]);
        pt.record_accesses(0..2, 10.0);
        assert!(pt.get(0).accessed);
        assert!(!pt.get(1).accessed);
    }

    #[test]
    fn barely_touched_pages_keep_bit_clear_but_count() {
        let mut pt = PageTable::default();
        pt.extend_for_object(ObjectId(0), Tier::Pm, vec![0.5, 0.5]);
        pt.record_accesses(0..2, 0.4); // 0.2 expected accesses per page
        assert!(!pt.get(0).accessed);
        assert!(pt.get(0).access_count > 0.0);
        pt.record_accesses(0..2, 10.0);
        assert!(pt.get(0).accessed);
    }

    #[test]
    fn quarantine_set_is_ordered_and_visible_in_debug() {
        let mut pt = PageTable::default();
        pt.extend_for_object(ObjectId(0), Tier::Dram, vec![0.5, 0.3, 0.2]);
        assert!(!pt.is_quarantined(1));
        assert_eq!(pt.quarantine_bytes(), 0);
        assert!(pt.quarantine_page(2));
        assert!(pt.quarantine_page(1));
        assert!(!pt.quarantine_page(1), "double-quarantine must be a no-op");
        assert!(pt.is_quarantined(1) && pt.is_quarantined(2));
        assert_eq!(pt.quarantined().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(pt.quarantined_count(), 2);
        assert_eq!(pt.quarantine_bytes(), 2 * PAGE_SIZE);
        // The set is part of the bitwise page-table fingerprint.
        let with = format!("{pt:?}");
        let mut clean = PageTable::default();
        clean.extend_for_object(ObjectId(0), Tier::Dram, vec![0.5, 0.3, 0.2]);
        assert_ne!(with, format!("{clean:?}"));
    }

    #[test]
    fn irregular_layout_falls_back_to_scan() {
        let mut pt = PageTable::default();
        // Out-of-order object id: aggregates disabled, queries still work.
        pt.extend_for_object(ObjectId(3), Tier::Pm, vec![0.5, 0.5]);
        pt.set_tier(1, Tier::Dram);
        pt.flush_aggregates();
        assert_eq!(pt.weighted_fraction_in(0..2, Tier::Dram), 0.5);
        assert_eq!(pt.bytes_in(Tier::Dram), PAGE_SIZE);
    }
}
