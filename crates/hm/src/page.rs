//! Pages and the emulated page table — extent/run-length edition.
//!
//! Each 4 KiB page carries the state real tiering systems read and write:
//! current tier, an *accessed* bit (the PTE bit profilers scan and reset),
//! and a saturating access counter. A per-page *weight* models how the
//! object's accesses distribute over its pages (uniform for streaming
//! objects, skewed for random-pattern objects with hot entries) — this is
//! what makes hot-page detection meaningful in the emulation.
//!
//! Instead of one `PageInfo` per page, the table stores maximal *runs*:
//! contiguous page ranges whose full state (object, tier, weight bits,
//! accessed, access-count bits, migration count) is bitwise identical.
//! Uniform objects start as a handful of runs regardless of size, batch
//! migrations split and re-merge runs instead of writing every page, and
//! whole-table sweeps (record, age, reset) cost O(runs), not O(pages).
//!
//! The run space is sharded by page range ([`SHARD_PAGES`] pages per
//! shard; runs never cross a shard boundary) so round phases can run in
//! parallel across shards. Every parallel phase merges its per-shard
//! results in ascending shard order, which keeps all outputs byte-identical
//! to the sequential engine regardless of the job count.
//!
//! Weighted sums follow one fixed *streak* specification everywhere (see
//! [`PageTable::scan_weight_sums`]): within each shard, maximal
//! (weight-bits, tier)-equal streaks contribute `weight * streak_len`, and
//! per-shard partial sums fold in shard order. The per-page [`RefTable`]
//! oracle implements the identical spec, so extent-engine outputs can be
//! compared bitwise against a straightforward per-page model in tests and
//! benches.

use std::collections::BTreeSet;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};

use crate::config::Tier;
use crate::object::ObjectId;

/// Page size of the emulated system (4 KiB, as in the paper's profilers).
pub const PAGE_SIZE: u64 = 4096;

/// Pages per 2 MiB huge region (Thermostat samples one 4 KiB page per 2 MiB).
pub const PAGES_PER_HUGE_REGION: u64 = (2 << 20) / PAGE_SIZE;

/// Pages per extent shard. Runs never cross a shard boundary and weighted
/// streak sums break here, so per-shard partials are independent of how
/// work is divided among threads. 2^16 pages = 256 MiB of address space
/// per shard; every unit-test-sized table fits in one shard, where the
/// engine is exactly the serial specification.
pub const SHARD_PAGES: u64 = 1 << 16;

/// Shard spans below this stay sequential — thread spawn overhead would
/// dominate.
const PAR_MIN_SHARDS: usize = 8;

/// In auto mode (`set_engine_jobs(0)`), spans whose total run count is
/// below this also stay sequential: spawning the worker pool costs tens
/// of microseconds, while scanning a well-coalesced span costs tens of
/// nanoseconds per run, so parallelism only pays once the span carries
/// real work. An explicit `set_engine_jobs(n >= 2)` bypasses the work
/// estimate — the `--jobs`-independence tests force both paths that way,
/// and results are identical on either path by construction.
const PAR_MIN_RUNS: usize = 16_384;

/// Global page identifier.
pub type PageId = u64;

static ENGINE_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Set the worker count for parallel shard phases (0 = auto-detect).
/// Mirrors `merch_bench::par::set_sweep_jobs`; the engine lives below that
/// crate in the dependency graph, so it carries its own knob.
pub fn set_engine_jobs(jobs: usize) {
    ENGINE_JOBS.store(jobs, Ordering::Relaxed);
}

/// Effective worker count for parallel shard phases.
pub fn engine_jobs() -> usize {
    match ENGINE_JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

fn tier_idx(tier: Tier) -> usize {
    match tier {
        Tier::Dram => 0,
        Tier::Pm => 1,
    }
}

/// Per-page metadata (an emulated PTE plus profiling counters).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PageInfo {
    /// Object the page belongs to.
    pub object: ObjectId,
    /// Tier the page currently resides on. Private: tier changes must go
    /// through [`PageTable::set_tier`] to keep the tier counters exact.
    tier: Tier,
    /// Fraction of the object's accesses that land on this page (sums to 1
    /// over the object's pages). Private: weight changes must go through
    /// [`PageTable::set_weight`] to invalidate the object aggregate.
    weight: f64,
    /// Emulated PTE accessed bit; set by execution, cleared by profilers.
    pub accessed: bool,
    /// Accumulated access count since the last profiler reset.
    pub access_count: f64,
    /// Lifetime migration count (for overhead accounting / tests).
    pub migrations: u32,
}

impl PageInfo {
    /// Tier the page currently resides on.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Fraction of the object's accesses landing on this page.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Rebuild a fully-specified page (checkpoint restore only; normal
    /// allocation goes through
    /// [`extend_for_object`](PageTable::extend_for_object)).
    pub fn restore(
        object: ObjectId,
        tier: Tier,
        weight: f64,
        accessed: bool,
        access_count: f64,
        migrations: u32,
    ) -> Self {
        Self {
            object,
            tier,
            weight,
            accessed,
            access_count,
            migrations,
        }
    }

    /// Bitwise state equality — the run-coalescing relation: two pages are
    /// mergeable exactly when every field (floats compared by bits) matches.
    pub fn bits_eq(&self, o: &PageInfo) -> bool {
        self.object == o.object
            && self.tier == o.tier
            && self.weight.to_bits() == o.weight.to_bits()
            && self.accessed == o.accessed
            && self.access_count.to_bits() == o.access_count.to_bits()
            && self.migrations == o.migrations
    }
}

/// One extent: `len` contiguous pages starting at `start` whose full state
/// is bitwise identical. Runs are maximal (always coalesced) within their
/// shard, which makes the table representation — and therefore its derived
/// `Debug` output — canonical for a given page-level state.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Run {
    /// First page of the run.
    pub start: PageId,
    /// Pages in the run (≥ 1).
    pub len: u64,
    /// Shared state of every page in the run.
    pub info: PageInfo,
}

impl Run {
    /// One-past-the-end page id.
    pub fn end(&self) -> PageId {
        self.start + self.len
    }
}

/// Arena handle sentinel: no node.
const NIL: u32 = u32::MAX;

/// One arena node: a run's full page state plus its intrusive `next` link.
/// Run *starts* are implicit — traversal accumulates lengths from the
/// shard's base page — which packs a node into 32 bytes. At the
/// fragmentation-adversarial limit (one run per page) a 1e9-page table
/// costs ~32 GB of run store, where boxed `Vec<Run>` shards (48-byte runs
/// plus growth slack) would not fit the machine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct RunNode {
    /// Fraction of the object's accesses landing on each page of the run.
    weight: f64,
    /// Accumulated access count since the last profiler reset.
    access_count: f64,
    /// Owning object (dense `ObjectId` payload).
    object: u32,
    /// Lifetime migration count.
    migrations: u32,
    /// Next run of the shard in page order (live nodes) or next free node
    /// (free-listed nodes); `NIL` terminates both chains.
    next: u32,
    /// Run length minus one (1..=`SHARD_PAGES` pages, exactly a u16).
    len_m1: u16,
    /// Bit 0: `tier_idx` of the run's tier; bit 1: the PTE accessed bit.
    flags: u8,
    _pad: u8,
}

impl RunNode {
    fn new(len: u64, info: &PageInfo) -> Self {
        debug_assert!((1..=SHARD_PAGES).contains(&len));
        Self {
            weight: info.weight,
            access_count: info.access_count,
            object: info.object.0,
            migrations: info.migrations,
            next: NIL,
            len_m1: (len - 1) as u16,
            flags: tier_idx(info.tier) as u8 | ((info.accessed as u8) << 1),
            _pad: 0,
        }
    }

    fn len(&self) -> u64 {
        self.len_m1 as u64 + 1
    }

    fn info(&self) -> PageInfo {
        PageInfo {
            object: ObjectId(self.object),
            tier: if self.flags & 1 == 0 {
                Tier::Dram
            } else {
                Tier::Pm
            },
            weight: self.weight,
            accessed: self.flags & 2 != 0,
            access_count: self.access_count,
            migrations: self.migrations,
        }
    }

    /// Bitwise-state match against a `PageInfo` — the coalescing relation,
    /// [`PageInfo::bits_eq`] expressed against the packed node fields.
    fn matches(&self, info: &PageInfo) -> bool {
        self.object == info.object.0
            && self.flags == (tier_idx(info.tier) as u8 | ((info.accessed as u8) << 1))
            && self.weight.to_bits() == info.weight.to_bits()
            && self.access_count.to_bits() == info.access_count.to_bits()
            && self.migrations == info.migrations
    }
}

/// One shard: the runs covering `[base, base + SHARD_PAGES)`, stored in a
/// compact index-linked arena. Live runs form a singly-linked chain from
/// `head` in page order; reclaimed nodes form a free list that is reused
/// before the backing vector grows, so steady-state rebuild phases
/// allocate nothing.
#[derive(Clone, Serialize, Deserialize)]
struct Shard {
    /// First page id of the shard's range.
    base: PageId,
    /// First live run, or `NIL` when the shard is empty.
    head: u32,
    /// Last live run (append coalescing), or `NIL`.
    tail: u32,
    /// Head of the free list.
    free: u32,
    /// Live run count.
    live: u32,
    /// Pages covered by live runs (the append cursor within the shard).
    used: u64,
    /// Node arena.
    nodes: Vec<RunNode>,
}

impl std::fmt::Debug for Shard {
    /// Canonical logical view. Node order, free-listed garbage, and vector
    /// capacity are representation details that differ between op
    /// histories; every bitwise table comparison in the workspace goes
    /// through `{:?}`, so only the (always-coalesced, therefore canonical)
    /// run content may appear — in the exact shape the pre-arena
    /// `Vec<Run>` shard derived.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("runs", &self.runs_vec())
            .finish()
    }
}

/// Iterator over a shard's live runs, reconstructing absolute starts.
struct ShardRuns<'a> {
    sh: &'a Shard,
    cur: u32,
    start: PageId,
}

impl Iterator for ShardRuns<'_> {
    type Item = Run;
    fn next(&mut self) -> Option<Run> {
        if self.cur == NIL {
            return None;
        }
        let n = &self.sh.nodes[self.cur as usize];
        let run = Run {
            start: self.start,
            len: n.len(),
            info: n.info(),
        };
        self.start += n.len();
        self.cur = n.next;
        Some(run)
    }
}

impl Shard {
    fn new(base: PageId) -> Self {
        Self {
            base,
            head: NIL,
            tail: NIL,
            free: NIL,
            live: 0,
            used: 0,
            nodes: Vec::new(),
        }
    }

    fn alloc(&mut self, node: RunNode) -> u32 {
        if self.free != NIL {
            let i = self.free;
            self.free = self.nodes[i as usize].next;
            self.nodes[i as usize] = node;
            i
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn release(&mut self, i: u32) {
        self.nodes[i as usize].next = self.free;
        self.free = i;
    }

    /// Append `len` pages of `info` at the shard's current end, coalescing
    /// into the tail run when the state matches. All appends — allocation,
    /// checkpoint restore, and chain rebuilds — are contiguous in page
    /// order, so tail coalescing is exactly the old `push_run` relation.
    fn push_seg(&mut self, len: u64, info: &PageInfo) {
        if len == 0 {
            return;
        }
        debug_assert!(self.used + len <= SHARD_PAGES, "segment crosses shard");
        self.used += len;
        if self.tail != NIL {
            let t = &mut self.nodes[self.tail as usize];
            if t.matches(info) {
                t.len_m1 = (t.len() + len - 1) as u16;
                return;
            }
        }
        let i = self.alloc(RunNode::new(len, info));
        if self.tail == NIL {
            self.head = i;
        } else {
            self.nodes[self.tail as usize].next = i;
        }
        self.tail = i;
        self.live += 1;
    }

    /// Iterate live runs in page order.
    fn iter(&self) -> ShardRuns<'_> {
        ShardRuns {
            sh: self,
            cur: self.head,
            start: self.base,
        }
    }

    /// Materialized run list (canonical `Debug` rendering).
    fn runs_vec(&self) -> Vec<Run> {
        self.iter().collect()
    }

    /// Shard-local page lookup: O(runs in shard) chain walk (the arena
    /// trades the old binary search for 32-byte nodes; no hot path does
    /// per-page lookups).
    fn get(&self, id: PageId) -> PageInfo {
        for r in self.iter() {
            if id < r.end() {
                debug_assert!(id >= r.start);
                return r.info;
            }
        }
        panic!("page {id} beyond shard end");
    }

    /// Rebuild the live chain applying `f` to every run segment
    /// overlapping `range` (extent split-apply-coalesce). `f` sees the
    /// segment's (uniform) state and length; because every mutation the
    /// engine performs depends only on the page's prior state, one
    /// application per segment equals one application per page. Consumed
    /// nodes are released before the rebuilt segments allocate, so the
    /// arena reuses them in place.
    fn apply(&mut self, range: &Range<PageId>, f: &mut dyn FnMut(&mut PageInfo, u64)) {
        let (mut cur, mut start) = (self.head, self.base);
        self.head = NIL;
        self.tail = NIL;
        self.live = 0;
        self.used = 0;
        while cur != NIL {
            let node = self.nodes[cur as usize];
            self.release(cur);
            cur = node.next;
            let (r_start, r_len) = (start, node.len());
            start += r_len;
            let info = node.info();
            let lo = r_start.max(range.start);
            let hi = (r_start + r_len).min(range.end);
            if lo >= hi {
                self.push_seg(r_len, &info);
                continue;
            }
            self.push_seg(lo - r_start, &info);
            let mut mid = info;
            f(&mut mid, hi - lo);
            self.push_seg(hi - lo, &mid);
            self.push_seg(r_start + r_len - hi, &info);
        }
    }

    /// Per-page variant of [`Shard::apply`] for mutations that differ page
    /// to page (weight reassignment). Segments outside `range` pass
    /// through as whole runs; inside, `f` runs once per page.
    fn apply_paged(&mut self, range: &Range<PageId>, f: &mut dyn FnMut(&mut PageInfo, PageId)) {
        let (mut cur, mut start) = (self.head, self.base);
        self.head = NIL;
        self.tail = NIL;
        self.live = 0;
        self.used = 0;
        while cur != NIL {
            let node = self.nodes[cur as usize];
            self.release(cur);
            cur = node.next;
            let (r_start, r_len) = (start, node.len());
            start += r_len;
            let info = node.info();
            let lo = r_start.max(range.start);
            let hi = (r_start + r_len).min(range.end);
            if lo >= hi {
                self.push_seg(r_len, &info);
                continue;
            }
            self.push_seg(lo - r_start, &info);
            for id in lo..hi {
                let mut m = info;
                f(&mut m, id);
                self.push_seg(1, &m);
            }
            self.push_seg(r_start + r_len - hi, &info);
        }
    }

    /// Streak-spec weighted sums over this shard's runs clipped to
    /// `range`: maximal (weight-bits, tier)-equal streaks contribute
    /// `w * len`, folded in run order. Returns `(total, in_[tier])`.
    fn weight_sums(&self, range: &Range<PageId>) -> (f64, [f64; 2]) {
        let mut total = 0.0;
        let mut in_ = [0.0; 2];
        let mut cur: Option<(u64, Tier, u64)> = None; // (weight bits, tier, pages)
        let flush = |cur: &mut Option<(u64, Tier, u64)>, total: &mut f64, in_: &mut [f64; 2]| {
            if let Some((wb, t, l)) = cur.take() {
                let c = f64::from_bits(wb) * l as f64;
                *total += c;
                in_[tier_idx(t)] += c;
            }
        };
        for r in self.iter() {
            let lo = r.start.max(range.start);
            let hi = r.end().min(range.end);
            if lo >= hi {
                continue;
            }
            let key = (r.info.weight.to_bits(), r.info.tier);
            match &mut cur {
                Some((wb, t, l)) if *wb == key.0 && *t == key.1 => *l += hi - lo,
                _ => {
                    flush(&mut cur, &mut total, &mut in_);
                    cur = Some((key.0, key.1, hi - lo));
                }
            }
        }
        flush(&mut cur, &mut total, &mut in_);
        (total, in_)
    }
}

/// Run `f` over each shard of `shards` on up to `jobs` executors, returning
/// per-shard results in ascending shard order (index passed to `f` is the
/// offset within `shards`). Deterministic: the work split never affects
/// the result order.
///
/// Shard phases run as [`TaskClass::Shard`] tasks on the unified
/// [`merch_sched`] pool: `jobs - 1` chunks are queued and the submitting
/// thread runs the first chunk itself (then helps drain queued shard
/// tasks inside the scope wait), so an explicit `jobs` means at most
/// `jobs` concurrent chunk executors and N tenants each fanning out M
/// shards share one pool instead of oversubscribing N*M threads.
fn par_map_mut<T: Send>(
    shards: &mut [Shard],
    jobs: usize,
    f: &(dyn Fn(usize, &mut Shard) -> T + Sync),
) -> Vec<T> {
    use merch_sched::{JobOutcome, TaskClass};
    let n = shards.len();
    let chunk = n.div_ceil(jobs.max(1)).max(1);
    merch_sched::ensure_workers(jobs.saturating_sub(1));
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let ((), outcome) = merch_sched::try_scope(TaskClass::Shard, |scope| {
        let mut chunks = shards
            .chunks_mut(chunk)
            .zip(out.chunks_mut(chunk))
            .enumerate();
        let first = chunks.next();
        for (ci, (sh, slots)) in chunks {
            scope.spawn(move || {
                for (j, (shard, slot)) in sh.iter_mut().zip(slots.iter_mut()).enumerate() {
                    *slot = Some(f(ci * chunk + j, shard));
                }
            });
        }
        if let Some((ci, (sh, slots))) = first {
            for (j, (shard, slot)) in sh.iter_mut().zip(slots.iter_mut()).enumerate() {
                *slot = Some(f(ci * chunk + j, shard));
            }
        }
    });
    if matches!(outcome, JobOutcome::Panicked { .. }) {
        // A panicked chunk task left its untouched slots `None` and their
        // shards unmodified, so recomputing exactly those on the caller's
        // thread is byte-identical to a clean parallel pass (slot i
        // depends only on shard i). A fault that strikes again here
        // unwinds from the caller — never through the pool.
        for (i, (shard, slot)) in shards.iter_mut().zip(out.iter_mut()).enumerate() {
            if slot.is_none() {
                *slot = Some(f(i, shard));
            }
        }
    }
    out.into_iter()
        .map(|o| o.expect("every shard visited"))
        .collect()
}

/// Read-only sibling of [`par_map_mut`].
fn par_map_ref<T: Send>(
    shards: &[Shard],
    jobs: usize,
    f: &(dyn Fn(usize, &Shard) -> T + Sync),
) -> Vec<T> {
    use merch_sched::{JobOutcome, TaskClass};
    let n = shards.len();
    let chunk = n.div_ceil(jobs.max(1)).max(1);
    merch_sched::ensure_workers(jobs.saturating_sub(1));
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let ((), outcome) = merch_sched::try_scope(TaskClass::Shard, |scope| {
        let mut chunks = shards.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate();
        let first = chunks.next();
        for (ci, (sh, slots)) in chunks {
            scope.spawn(move || {
                for (j, (shard, slot)) in sh.iter().zip(slots.iter_mut()).enumerate() {
                    *slot = Some(f(ci * chunk + j, shard));
                }
            });
        }
        if let Some((ci, (sh, slots))) = first {
            for (j, (shard, slot)) in sh.iter().zip(slots.iter_mut()).enumerate() {
                *slot = Some(f(ci * chunk + j, shard));
            }
        }
    });
    if matches!(outcome, JobOutcome::Panicked { .. }) {
        // Sequential fallback for the slots a dead chunk never reached
        // (see par_map_mut) — read-only here, so trivially identical.
        for (i, (shard, slot)) in shards.iter().zip(out.iter_mut()).enumerate() {
            if slot.is_none() {
                *slot = Some(f(i, shard));
            }
        }
    }
    out.into_iter()
        .map(|o| o.expect("every shard visited"))
        .collect()
}

/// Per-object weighted-residency aggregate: the running sums
/// `weighted_fraction_in` needs, maintained incrementally so whole-object
/// queries skip the run scan.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ObjAgg {
    /// First page of the object's range.
    first_page: PageId,
    /// Pages in the object's range.
    num_pages: u64,
    /// Streak-spec weight total over the range (see
    /// [`PageTable::scan_weight_sums`]).
    weight_total: f64,
    /// Per-tier streak-spec weight sums (indexed by `tier_idx`) — bitwise
    /// identical to what a fresh [`PageTable::scan_weight_sums`] returns.
    weight_in: [f64; 2],
    /// True when a tier/weight write invalidated the float sums.
    dirty: bool,
}

/// The emulated page table: sharded run-length extents plus incremental
/// tier accounting.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct PageTable {
    shards: Vec<Shard>,
    /// Total mapped pages.
    num_pages: u64,
    /// Pages resident per tier (indexed by `tier_idx`). Exact integers,
    /// updated eagerly on every tier change — `bytes_in` never scans.
    tier_pages: [u64; 2],
    /// Per-object aggregates, indexed by `ObjectId`.
    aggs: Vec<ObjAgg>,
    /// Objects whose aggregate needs recomputation (deduplicated via the
    /// per-aggregate `dirty` flag).
    dirty: Vec<u32>,
    /// Set when pages were appended in a layout the per-object aggregates
    /// cannot represent (non-dense object ids). All fraction queries then
    /// take the scan path; tier counters stay exact regardless.
    irregular: bool,
    /// Pages whose DRAM frame was poisoned by an uncorrectable ECC error.
    /// Quarantined pages are permanently pinned off DRAM; the set is part
    /// of the derived `Debug` output, so every bitwise page-table
    /// comparison (epoch rollback, replay determinism) covers it. In run
    /// terms a quarantined page is a punch-out: batch promotions split
    /// around it and leave it behind on PM. Ordered so serialization is
    /// canonical.
    quarantine: BTreeSet<PageId>,
}

fn shard_of(id: PageId) -> usize {
    (id / SHARD_PAGES) as usize
}

impl PageTable {
    /// Number of pages.
    pub fn len(&self) -> usize {
        self.num_pages as usize
    }

    /// True when no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.num_pages == 0
    }

    /// Number of extents currently in the table (fragmentation gauge;
    /// 1 run per object per shard when fully coalesced).
    pub fn num_extents(&self) -> usize {
        self.shards.iter().map(|s| s.live as usize).sum()
    }

    /// Inclusive shard span of a non-empty range, clamped to the table.
    fn shard_span(&self, range: &Range<PageId>) -> Option<(usize, usize)> {
        if range.start >= range.end || self.shards.is_empty() {
            return None;
        }
        let s0 = shard_of(range.start).min(self.shards.len() - 1);
        let s1 = shard_of(range.end - 1).min(self.shards.len() - 1);
        Some((s0, s1))
    }

    /// Append one page with arbitrary state, coalescing with the shard's
    /// last run when possible.
    fn append_page(&mut self, info: PageInfo) {
        let id = self.num_pages;
        let si = shard_of(id);
        if si == self.shards.len() {
            self.shards.push(Shard::new(si as u64 * SHARD_PAGES));
        }
        self.shards[si].push_seg(1, &info);
        self.num_pages += 1;
    }

    fn push_object_agg(&mut self, object: ObjectId, first: PageId, num_pages: u64) {
        if object.0 as usize == self.aggs.len() {
            let (weight_total, weight_in) = self.scan_weight_sums(first..first + num_pages);
            self.aggs.push(ObjAgg {
                first_page: first,
                num_pages,
                weight_total,
                weight_in,
                dirty: false,
            });
        } else {
            self.irregular = true;
        }
    }

    /// Append pages for a new object; returns the first new page id.
    pub fn extend_for_object(
        &mut self,
        object: ObjectId,
        tier: Tier,
        weights: impl IntoIterator<Item = f64>,
    ) -> PageId {
        let first = self.num_pages;
        for w in weights {
            self.append_page(PageInfo {
                object,
                tier,
                weight: w,
                accessed: false,
                access_count: 0.0,
                migrations: 0,
            });
        }
        let num_pages = self.num_pages - first;
        self.tier_pages[tier_idx(tier)] += num_pages;
        self.push_object_agg(object, first, num_pages);
        first
    }

    /// Append `num_pages` uniform-weight pages for a new object without
    /// materializing a per-page weight vector: O(num_pages / SHARD_PAGES)
    /// runs. State-identical to `extend_for_object` with a repeated
    /// `weight` — the fast path `allocate` takes for unskewed objects.
    pub fn extend_uniform_for_object(
        &mut self,
        object: ObjectId,
        tier: Tier,
        num_pages: u64,
        weight: f64,
    ) -> PageId {
        let first = self.num_pages;
        let info = PageInfo {
            object,
            tier,
            weight,
            accessed: false,
            access_count: 0.0,
            migrations: 0,
        };
        let end = first + num_pages;
        let mut id = first;
        while id < end {
            let si = shard_of(id);
            if si == self.shards.len() {
                self.shards.push(Shard::new(si as u64 * SHARD_PAGES));
            }
            let len = ((si as u64 + 1) * SHARD_PAGES).min(end) - id;
            self.shards[si].push_seg(len, &info);
            id += len;
        }
        self.num_pages = end;
        self.tier_pages[tier_idx(tier)] += num_pages;
        self.push_object_agg(object, first, num_pages);
        first
    }

    /// Append `num_pages` uniform-weight pages for a new object with the
    /// tier alternating every page (even offsets on `tiers[0]`, odd on
    /// `tiers[1]`): no two neighbours coalesce, so the table holds one run
    /// *per page* — the fragmentation-adversarial worst case for run
    /// storage, which the compact node arena exists to hold at scale.
    /// Bench/test builder; state-identical to [`extend_for_object`]
    /// (tier `tiers[0]`) followed by a [`set_tier`] of every odd page to
    /// `tiers[1]`.
    ///
    /// [`extend_for_object`]: Self::extend_for_object
    /// [`set_tier`]: Self::set_tier
    pub fn extend_alternating_for_object(
        &mut self,
        object: ObjectId,
        tiers: [Tier; 2],
        num_pages: u64,
        weight: f64,
    ) -> PageId {
        let first = self.num_pages;
        let infos = tiers.map(|tier| PageInfo {
            object,
            tier,
            weight,
            accessed: false,
            access_count: 0.0,
            migrations: 0,
        });
        for id in first..first + num_pages {
            let si = shard_of(id);
            if si == self.shards.len() {
                self.shards.push(Shard::new(si as u64 * SHARD_PAGES));
            }
            self.shards[si].push_seg(1, &infos[((id - first) & 1) as usize]);
        }
        self.num_pages = first + num_pages;
        let even = num_pages.div_ceil(2);
        self.tier_pages[tier_idx(tiers[0])] += even;
        self.tier_pages[tier_idx(tiers[1])] += num_pages - even;
        self.push_object_agg(object, first, num_pages);
        first
    }

    /// Append one fully-specified page (checkpoint restore only; normal
    /// allocation goes through [`extend_for_object`](Self::extend_for_object)).
    /// Call [`flush_aggregates`](Self::flush_aggregates) once after the
    /// last page so whole-object queries regain their O(1) path.
    pub fn push_raw(&mut self, page: PageInfo) {
        let id = self.num_pages;
        self.tier_pages[tier_idx(page.tier)] += 1;
        let oi = page.object.0 as usize;
        if oi == self.aggs.len() {
            self.aggs.push(ObjAgg {
                first_page: id,
                num_pages: 1,
                weight_total: 0.0,
                weight_in: [0.0; 2],
                dirty: true,
            });
            self.dirty.push(page.object.0);
        } else if oi + 1 == self.aggs.len()
            && self.aggs[oi].first_page + self.aggs[oi].num_pages == id
        {
            self.aggs[oi].num_pages += 1;
        } else {
            self.irregular = true;
        }
        self.append_page(page);
    }

    /// Restore one whole run (checkpoint v5 decode): `len` pages sharing
    /// `info`, appended at the current end of the table. Aggregate
    /// bookkeeping matches `len` consecutive [`push_raw`](Self::push_raw)
    /// calls.
    pub fn push_raw_run(&mut self, len: u64, info: PageInfo) {
        let first = self.num_pages;
        self.tier_pages[tier_idx(info.tier)] += len;
        let oi = info.object.0 as usize;
        if oi == self.aggs.len() {
            self.aggs.push(ObjAgg {
                first_page: first,
                num_pages: len,
                weight_total: 0.0,
                weight_in: [0.0; 2],
                dirty: true,
            });
            self.dirty.push(info.object.0);
        } else if oi + 1 == self.aggs.len()
            && self.aggs[oi].first_page + self.aggs[oi].num_pages == first
        {
            self.aggs[oi].num_pages += len;
        } else if len > 0 {
            self.irregular = true;
        }
        let end = first + len;
        let mut id = first;
        while id < end {
            let si = shard_of(id);
            if si == self.shards.len() {
                self.shards.push(Shard::new(si as u64 * SHARD_PAGES));
            }
            let seg = ((si as u64 + 1) * SHARD_PAGES).min(end) - id;
            self.shards[si].push_seg(seg, &info);
            id += seg;
        }
        self.num_pages = end;
    }

    /// Page state by value (`PageInfo` is `Copy`; mutation goes through
    /// the targeted mutators so runs and counters stay consistent).
    pub fn get(&self, id: PageId) -> PageInfo {
        assert!(id < self.num_pages, "page {id} out of bounds");
        self.shards[shard_of(id)].get(id)
    }

    /// Iterate over `(PageId, PageInfo)` by value, in page order.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, PageInfo)> + '_ {
        self.runs()
            .flat_map(|r| (r.start..r.end()).map(move |id| (id, r.info)))
    }

    /// Iterate all runs in page order.
    pub fn runs(&self) -> impl Iterator<Item = Run> + '_ {
        self.shards.iter().flat_map(|s| s.iter())
    }

    /// Iterate runs clipped to `range`, in page order.
    pub fn runs_in(&self, range: Range<PageId>) -> impl Iterator<Item = Run> + '_ {
        let (s0, s1) = self.shard_span(&range).map_or((0, 0), |(a, b)| (a, b + 1));
        self.shards[s0..s1].iter().flat_map(move |sh| {
            let (start, end) = (range.start, range.end);
            sh.iter().filter_map(move |r| {
                let lo = r.start.max(start);
                let hi = r.end().min(end);
                (lo < hi).then(|| Run {
                    start: lo,
                    len: hi - lo,
                    info: r.info,
                })
            })
        })
    }

    /// `idx`-th page (ascending id order) currently resident in `tier` —
    /// an O(runs) order-statistic walk replacing O(pages) resident-list
    /// materialization (fault-victim selection).
    pub fn nth_page_in_tier(&self, tier: Tier, mut idx: u64) -> Option<PageId> {
        for r in self.runs() {
            if r.info.tier == tier {
                if idx < r.len {
                    return Some(r.start + idx);
                }
                idx -= r.len;
            }
        }
        None
    }

    /// Pages currently resident in `tier` (O(1) from the counters).
    pub fn pages_in(&self, tier: Tier) -> u64 {
        self.tier_pages[tier_idx(tier)]
    }

    /// Sequential split-apply-coalesce over every run segment in `range`.
    fn apply(&mut self, range: Range<PageId>, mut f: impl FnMut(&mut PageInfo, u64)) {
        let Some((s0, s1)) = self.shard_span(&range) else {
            return;
        };
        for si in s0..=s1 {
            self.shards[si].apply(&range, &mut f);
        }
    }

    /// Worker count a parallel phase over shards `s0..=s1` should use;
    /// `<= 1` means stay on the sequential path. Explicit job counts are
    /// honoured as set; auto mode additionally requires enough total runs
    /// in the span ([`PAR_MIN_RUNS`]) to amortize the pool spawn.
    fn span_jobs(&self, s0: usize, s1: usize) -> usize {
        if s1 - s0 + 1 < PAR_MIN_SHARDS {
            return 1;
        }
        match ENGINE_JOBS.load(Ordering::Relaxed) {
            0 => {
                let runs: usize = self.shards[s0..=s1].iter().map(|s| s.live as usize).sum();
                if runs < PAR_MIN_RUNS {
                    1
                } else {
                    engine_jobs()
                }
            }
            n => n,
        }
    }

    /// Parallel split-apply-coalesce for state-pure mutations (the new
    /// value of a page depends only on its prior state). Falls back to the
    /// sequential path for small spans or `jobs <= 1`; results are
    /// identical either way because shards are independent.
    fn apply_par(&mut self, range: Range<PageId>, f: impl Fn(&mut PageInfo, u64) + Sync) {
        let Some((s0, s1)) = self.shard_span(&range) else {
            return;
        };
        let jobs = self.span_jobs(s0, s1);
        if jobs <= 1 {
            for si in s0..=s1 {
                self.shards[si].apply(&range, &mut |p, l| f(p, l));
            }
            return;
        }
        par_map_mut(&mut self.shards[s0..=s1], jobs, &|_, sh| {
            sh.apply(&range, &mut |p, l| f(p, l));
        });
    }

    fn mark_dirty(&mut self, object: ObjectId) {
        match self.aggs.get_mut(object.0 as usize) {
            Some(a) if !a.dirty => {
                a.dirty = true;
                self.dirty.push(object.0);
            }
            Some(_) => {}
            None => self.irregular = true,
        }
    }

    /// Move page `id` to `to`, keeping the tier counters exact and marking
    /// the owning object's aggregate for recomputation.
    pub fn set_tier(&mut self, id: PageId, to: Tier) {
        let mut changed: Option<(Tier, ObjectId)> = None;
        self.apply(id..id + 1, |p, _| {
            if p.tier != to {
                changed = Some((p.tier, p.object));
                p.tier = to;
            }
        });
        if let Some((from, object)) = changed {
            self.tier_pages[tier_idx(from)] -= 1;
            self.tier_pages[tier_idx(to)] += 1;
            self.mark_dirty(object);
        }
    }

    /// Batch tier move: every page of `range` not already on `to` moves in
    /// one extent split/merge sweep. Per-shard (tier-delta, dirty-object)
    /// results merge in shard order, so counters and aggregates end up
    /// exactly as the equivalent per-page [`set_tier`](Self::set_tier)
    /// loop would leave them.
    pub fn set_tier_range(&mut self, range: Range<PageId>, to: Tier) {
        let Some((s0, s1)) = self.shard_span(&range) else {
            return;
        };
        let jobs = self.span_jobs(s0, s1);
        let per_shard: Vec<([u64; 2], BTreeSet<u32>)> = if jobs <= 1 {
            (s0..=s1)
                .map(|si| {
                    let mut from_counts = [0u64; 2];
                    let mut objs = BTreeSet::new();
                    self.shards[si].apply(&range, &mut |p, len| {
                        if p.tier != to {
                            from_counts[tier_idx(p.tier)] += len;
                            objs.insert(p.object.0);
                            p.tier = to;
                        }
                    });
                    (from_counts, objs)
                })
                .collect()
        } else {
            par_map_mut(&mut self.shards[s0..=s1], jobs, &|_, sh| {
                let mut from_counts = [0u64; 2];
                let mut objs = BTreeSet::new();
                sh.apply(&range, &mut |p, len| {
                    if p.tier != to {
                        from_counts[tier_idx(p.tier)] += len;
                        objs.insert(p.object.0);
                        p.tier = to;
                    }
                });
                (from_counts, objs)
            })
        };
        for (from_counts, objs) in per_shard {
            let moved = from_counts[0] + from_counts[1];
            self.tier_pages[0] -= from_counts[0];
            self.tier_pages[1] -= from_counts[1];
            self.tier_pages[tier_idx(to)] += moved;
            for o in objs {
                self.mark_dirty(ObjectId(o));
            }
        }
    }

    /// Overwrite page `id`'s weight, marking the owning object's aggregate
    /// for recomputation.
    pub fn set_weight(&mut self, id: PageId, weight: f64) {
        let mut object = None;
        self.apply(id..id + 1, |p, _| {
            p.weight = weight;
            object = Some(p.object);
        });
        if let Some(object) = object {
            self.mark_dirty(object);
        }
    }

    /// Overwrite the weights of `first..first + weights.len()` in one
    /// per-page sweep (weight reassignment) — equivalent to a
    /// [`set_weight`](Self::set_weight) loop, one run rebuild per shard.
    pub fn set_weights_range(&mut self, first: PageId, weights: &[f64]) {
        let range = first..first + weights.len() as u64;
        let mut objs = BTreeSet::new();
        let Some((s0, s1)) = self.shard_span(&range) else {
            return;
        };
        for si in s0..=s1 {
            self.shards[si].apply_paged(&range, &mut |p, id| {
                p.weight = weights[(id - first) as usize];
                objs.insert(p.object.0);
            });
        }
        for o in objs {
            self.mark_dirty(ObjectId(o));
        }
    }

    /// Clear page `id`'s profiling state (PTE-scan reset).
    pub fn reset_page_profiling(&mut self, id: PageId) {
        self.apply(id..id + 1, |p, _| {
            p.accessed = false;
            p.access_count = 0.0;
        });
    }

    /// Read-and-clear the accessed bit (DAMON / AutoNUMA sampling).
    pub fn take_accessed(&mut self, id: PageId) -> bool {
        let mut was = false;
        self.apply(id..id + 1, |p, _| {
            was = p.accessed;
            p.accessed = false;
        });
        was
    }

    /// Overwrite page `id`'s access counter (profiler estimates).
    pub fn set_access_count(&mut self, id: PageId, count: f64) {
        self.apply(id..id + 1, |p, _| p.access_count = count);
    }

    /// Restore page `id`'s migration counter (epoch rollback).
    pub fn set_migrations(&mut self, id: PageId, migrations: u32) {
        self.apply(id..id + 1, |p, _| p.migrations = migrations);
    }

    /// Increment page `id`'s migration counter (poison remap accounting).
    pub fn bump_migrations(&mut self, id: PageId) {
        self.apply(id..id + 1, |p, _| p.migrations += 1);
    }

    /// Increment the migration counter of every page in `range`
    /// (batch-migration bookkeeping).
    pub fn bump_migrations_range(&mut self, range: Range<PageId>) {
        self.apply_par(range, |p, _| p.migrations += 1);
    }

    /// Scale every access counter by `factor` (aging sweep). O(runs),
    /// parallel across shards on large tables.
    pub fn age_access_counts(&mut self, factor: f64) {
        self.apply_par(0..self.num_pages, |p, _| p.access_count *= factor);
    }

    /// Clear every accessed bit and counter (start-of-interval reset).
    pub fn reset_profiling_counters(&mut self) {
        self.apply_par(0..self.num_pages, |p, _| {
            p.accessed = false;
            p.access_count = 0.0;
        });
    }

    /// Record `accesses` object-level accesses over the page range
    /// `range`, distributing them by page weight. The accessed bit is only
    /// set when at least half an access is expected to land on the page
    /// this interval — a page touched once every hundred rounds does not
    /// have its PTE bit set every round on real hardware. Each run is
    /// updated once (share depends only on weight), parallel across shards.
    pub fn record_accesses(&mut self, range: Range<PageId>, accesses: f64) {
        self.apply_par(range, |p, _| {
            let share = accesses * p.weight;
            if share > 0.0 {
                p.access_count += share;
                if share >= 0.5 {
                    p.accessed = true;
                }
            }
        });
    }

    /// Streak-spec weighted sums over `range`: per shard (ascending),
    /// maximal (weight-bits, tier)-equal streaks contribute
    /// `weight * streak_len`; per-shard partials fold in shard order. This
    /// one specification defines every weighted sum in the engine — the
    /// aggregates, the fraction queries, and the [`RefTable`] oracle all
    /// produce bitwise-identical values, independent of run fragmentation
    /// (streaks ignore object and run boundaries) and of the job count
    /// (partials always fold in shard order).
    pub fn scan_weight_sums(&self, range: Range<PageId>) -> (f64, [f64; 2]) {
        let Some((s0, s1)) = self.shard_span(&range) else {
            return (0.0, [0.0; 2]);
        };
        let jobs = self.span_jobs(s0, s1);
        let partials: Vec<(f64, [f64; 2])> = if jobs <= 1 {
            (s0..=s1)
                .map(|si| self.shards[si].weight_sums(&range))
                .collect()
        } else {
            par_map_ref(&self.shards[s0..=s1], jobs, &|_, sh| sh.weight_sums(&range))
        };
        let mut total = 0.0;
        let mut in_ = [0.0; 2];
        for (t, i2) in partials {
            total += t;
            in_[0] += i2[0];
            in_[1] += i2[1];
        }
        (total, in_)
    }

    /// Recompute every dirty object aggregate from its range. Batched
    /// callers (migration loops) call this once at the end; a query
    /// against a still-dirty object falls back to the scan and stays
    /// correct either way.
    pub fn flush_aggregates(&mut self) {
        while let Some(oi) = self.dirty.pop() {
            let Some(a) = self.aggs.get(oi as usize) else {
                continue;
            };
            let range = a.first_page..a.first_page + a.num_pages;
            let (weight_total, weight_in) = self.scan_weight_sums(range);
            let a = &mut self.aggs[oi as usize];
            a.weight_total = weight_total;
            a.weight_in = weight_in;
            a.dirty = false;
        }
    }

    /// True when every per-object aggregate is valid: no pending dirty
    /// entries and a regular (dense object id) layout. Whole-object
    /// [`weighted_fraction_in`](Self::weighted_fraction_in) queries then
    /// all take the O(1) aggregate path. Batched mutators uphold this by
    /// flushing once per batch; fraction-heavy callers assert it in debug
    /// builds.
    pub fn aggregates_clean(&self) -> bool {
        self.dirty.is_empty() && !self.irregular
    }

    /// Weighted fraction of the range currently resident in `tier`. O(1)
    /// when the range is exactly one object with a clean aggregate (the
    /// policy's per-object queries); otherwise falls back to
    /// [`scan_weight_sums`](Self::scan_weight_sums), which implements the
    /// same specification and therefore returns the bitwise-identical
    /// value.
    pub fn weighted_fraction_in(&self, range: Range<PageId>, tier: Tier) -> f64 {
        if !self.irregular && range.start < range.end && range.start < self.num_pages {
            // Regular layouts keep `aggs` sorted by `first_page`, so the
            // owning object comes from a binary search over the aggregates
            // — O(log objects) instead of an O(runs-in-shard) chain walk.
            let oi = self
                .aggs
                .partition_point(|a| a.first_page <= range.start)
                .wrapping_sub(1);
            if let Some(a) = self.aggs.get(oi) {
                if !a.dirty && a.first_page == range.start && a.num_pages == range.end - range.start
                {
                    return if a.weight_total > 0.0 {
                        a.weight_in[tier_idx(tier)] / a.weight_total
                    } else {
                        0.0
                    };
                }
            }
        }
        self.scan_weighted_fraction_in(range, tier)
    }

    /// Forced-scan fraction (no aggregate fast path) — the reference the
    /// fast path is tested against.
    pub fn scan_weighted_fraction_in(&self, range: Range<PageId>, tier: Tier) -> f64 {
        let (total, in_) = self.scan_weight_sums(range);
        if total > 0.0 {
            in_[tier_idx(tier)] / total
        } else {
            0.0
        }
    }

    /// Quarantine page `id`: its DRAM frame is dead and the page may never
    /// reside on DRAM again. Returns `true` when the page was newly
    /// quarantined. Does not move the page — the system remaps it via
    /// [`set_tier`](Self::set_tier) and charges the repair cost.
    pub fn quarantine_page(&mut self, id: PageId) -> bool {
        debug_assert!(id < self.num_pages);
        self.quarantine.insert(id)
    }

    /// Is page `id` quarantined (its DRAM frame poisoned)?
    pub fn is_quarantined(&self, id: PageId) -> bool {
        self.quarantine.contains(&id)
    }

    /// Quarantined pages in ascending page-id order.
    pub fn quarantined(&self) -> impl Iterator<Item = PageId> + '_ {
        self.quarantine.iter().copied()
    }

    /// Any quarantined page inside `range`? Batch promotions use this to
    /// decide whether a contiguous group needs per-page punch-outs.
    pub fn quarantined_in(&self, range: Range<PageId>) -> bool {
        self.quarantine.range(range.clone()).next().is_some()
    }

    /// Quarantined pages inside `range`, ascending (batch-promotion
    /// punch-outs).
    pub fn quarantined_in_range(&self, range: Range<PageId>) -> impl Iterator<Item = PageId> + '_ {
        self.quarantine.range(range).copied()
    }

    /// Number of quarantined pages.
    pub fn quarantined_count(&self) -> u64 {
        self.quarantine.len() as u64
    }

    /// Bytes of DRAM lost to poisoned frames (each dead frame shrinks the
    /// physical pool by one page).
    pub fn quarantine_bytes(&self) -> u64 {
        self.quarantine.len() as u64 * PAGE_SIZE
    }

    /// Bytes of the whole table resident in `tier`. O(1) from the
    /// incremental tier counters.
    pub fn bytes_in(&self, tier: Tier) -> u64 {
        self.tier_pages[tier_idx(tier)] * PAGE_SIZE
    }

    /// From-scratch recount of [`bytes_in`](Self::bytes_in) — verification
    /// only (proptests, benches, explicit oracle checks); release hot
    /// paths must rely on the incremental counters instead. O(runs) now,
    /// but still a full-table walk.
    pub fn recount_bytes_in(&self, tier: Tier) -> u64 {
        self.runs()
            .filter(|r| r.info.tier == tier)
            .map(|r| r.len)
            .sum::<u64>()
            * PAGE_SIZE
    }

    /// Debug-only structural verification: counters match a recount, runs
    /// are sorted, in-shard, maximal (coalesced) and cover exactly
    /// `0..len`. A no-op in release builds — this is the "O(pages)
    /// verification scans stay off hot paths" contract.
    pub fn debug_verify(&self) {
        #[cfg(debug_assertions)]
        {
            for tier in [Tier::Dram, Tier::Pm] {
                debug_assert_eq!(self.bytes_in(tier), self.recount_bytes_in(tier));
            }
            let mut expect = 0u64;
            for (si, sh) in self.shards.iter().enumerate() {
                debug_assert_eq!(sh.base, si as u64 * SHARD_PAGES);
                let mut prev: Option<Run> = None;
                let mut live = 0u32;
                for r in sh.iter() {
                    debug_assert_eq!(r.start, expect, "gap before run");
                    debug_assert!(r.len > 0);
                    debug_assert_eq!(shard_of(r.start), si);
                    debug_assert_eq!(shard_of(r.end() - 1), si, "run crosses shard");
                    if let Some(p) = prev {
                        debug_assert!(!p.info.bits_eq(&r.info), "uncoalesced neighbors");
                    }
                    expect = r.end();
                    prev = Some(r);
                    live += 1;
                }
                debug_assert_eq!(live, sh.live, "live-run counter drift");
                debug_assert_eq!(sh.used, expect - sh.base, "used-pages cursor drift");
                // The arena never leaks: every node is either on the live
                // chain or on the free list.
                let mut free = 0usize;
                let mut cur = sh.free;
                while cur != NIL {
                    free += 1;
                    debug_assert!(free <= sh.nodes.len(), "free-list cycle");
                    cur = sh.nodes[cur as usize].next;
                }
                debug_assert_eq!(live as usize + free, sh.nodes.len(), "leaked arena node");
            }
            debug_assert_eq!(expect, self.num_pages);
        }
    }
}

/// Per-page reference model implementing the identical observable
/// semantics as [`PageTable`] — the retained oracle the extent engine is
/// compared against bitwise in proptests and benches. Deliberately
/// simple: a flat `Vec<PageInfo>` with O(pages) everything.
#[derive(Debug, Default, Clone)]
pub struct RefTable {
    pages: Vec<PageInfo>,
    quarantine: BTreeSet<PageId>,
}

impl RefTable {
    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Mirror of [`PageTable::extend_for_object`].
    pub fn extend_for_object(
        &mut self,
        object: ObjectId,
        tier: Tier,
        weights: impl IntoIterator<Item = f64>,
    ) -> PageId {
        let first = self.pages.len() as PageId;
        for w in weights {
            self.pages.push(PageInfo {
                object,
                tier,
                weight: w,
                accessed: false,
                access_count: 0.0,
                migrations: 0,
            });
        }
        first
    }

    /// Page state by value.
    pub fn get(&self, id: PageId) -> PageInfo {
        self.pages[id as usize]
    }

    /// Mirror of [`PageTable::set_tier`].
    pub fn set_tier(&mut self, id: PageId, to: Tier) {
        self.pages[id as usize].tier = to;
    }

    /// Per-page equivalent of [`PageTable::set_tier_range`].
    pub fn set_tier_range(&mut self, range: Range<PageId>, to: Tier) {
        for id in range {
            self.pages[id as usize].tier = to;
        }
    }

    /// Mirror of [`PageTable::set_weight`].
    pub fn set_weight(&mut self, id: PageId, weight: f64) {
        self.pages[id as usize].weight = weight;
    }

    /// Mirror of [`PageTable::record_accesses`].
    pub fn record_accesses(&mut self, range: Range<PageId>, accesses: f64) {
        for id in range {
            let p = &mut self.pages[id as usize];
            let share = accesses * p.weight;
            if share > 0.0 {
                p.access_count += share;
                if share >= 0.5 {
                    p.accessed = true;
                }
            }
        }
    }

    /// Mirror of [`PageTable::age_access_counts`].
    pub fn age_access_counts(&mut self, factor: f64) {
        for p in &mut self.pages {
            p.access_count *= factor;
        }
    }

    /// Mirror of [`PageTable::reset_profiling_counters`].
    pub fn reset_profiling_counters(&mut self) {
        for p in &mut self.pages {
            p.accessed = false;
            p.access_count = 0.0;
        }
    }

    /// Mirror of [`PageTable::bump_migrations_range`].
    pub fn bump_migrations_range(&mut self, range: Range<PageId>) {
        for id in range {
            self.pages[id as usize].migrations += 1;
        }
    }

    /// Mirror of [`PageTable::quarantine_page`].
    pub fn quarantine_page(&mut self, id: PageId) -> bool {
        self.quarantine.insert(id)
    }

    /// Per-page recount of bytes resident in `tier`.
    pub fn bytes_in(&self, tier: Tier) -> u64 {
        self.pages.iter().filter(|p| p.tier == tier).count() as u64 * PAGE_SIZE
    }

    /// The streak-spec weighted sums over the per-page vector: streaks of
    /// equal (weight-bits, tier) break at `SHARD_PAGES` boundaries and
    /// contribute `w * len`, per-shard partials folding in shard order —
    /// exactly [`PageTable::scan_weight_sums`], derived from pages instead
    /// of runs.
    pub fn scan_weight_sums(&self, range: Range<PageId>) -> (f64, [f64; 2]) {
        let mut total = 0.0;
        let mut in_ = [0.0; 2];
        let start = range.start.min(self.pages.len() as u64);
        let end = range.end.min(self.pages.len() as u64);
        let mut shard = start / SHARD_PAGES;
        while shard * SHARD_PAGES < end {
            let lo = start.max(shard * SHARD_PAGES);
            let hi = end.min((shard + 1) * SHARD_PAGES);
            let mut st = 0.0;
            let mut si2 = [0.0; 2];
            let mut cur: Option<(u64, Tier, u64)> = None;
            for id in lo..hi {
                let p = &self.pages[id as usize];
                let key = (p.weight.to_bits(), p.tier);
                match &mut cur {
                    Some((wb, t, l)) if *wb == key.0 && *t == key.1 => *l += 1,
                    _ => {
                        if let Some((wb, t, l)) = cur.take() {
                            let c = f64::from_bits(wb) * l as f64;
                            st += c;
                            si2[tier_idx(t)] += c;
                        }
                        cur = Some((key.0, key.1, 1));
                    }
                }
            }
            if let Some((wb, t, l)) = cur.take() {
                let c = f64::from_bits(wb) * l as f64;
                st += c;
                si2[tier_idx(t)] += c;
            }
            total += st;
            in_[0] += si2[0];
            in_[1] += si2[1];
            shard += 1;
        }
        (total, in_)
    }

    /// Mirror of [`PageTable::scan_weighted_fraction_in`].
    pub fn scan_weighted_fraction_in(&self, range: Range<PageId>, tier: Tier) -> f64 {
        let (total, in_) = self.scan_weight_sums(range);
        if total > 0.0 {
            in_[tier_idx(tier)] / total
        } else {
            0.0
        }
    }

    /// Assert bitwise page-level equality with an extent table: every
    /// page's full state, the tier counters and the quarantine set.
    pub fn assert_matches(&self, pt: &PageTable) {
        assert_eq!(self.pages.len(), pt.len(), "page count");
        let mut n = 0u64;
        for (id, info) in pt.iter() {
            assert!(
                self.pages[id as usize].bits_eq(&info),
                "page {id} diverged: ref {:?} vs extent {info:?}",
                self.pages[id as usize]
            );
            n += 1;
        }
        assert_eq!(n, self.pages.len() as u64, "extent iteration covers table");
        for tier in [Tier::Dram, Tier::Pm] {
            assert_eq!(self.bytes_in(tier), pt.bytes_in(tier), "{tier:?} bytes");
        }
        assert_eq!(
            self.quarantine.iter().copied().collect::<Vec<_>>(),
            pt.quarantined().collect::<Vec<_>>(),
            "quarantine set"
        );
    }
}

/// Generate per-page weights for an object of `num_pages` pages with the
/// given skew: weight(page k) ∝ 1 / (k_rank + 1)^skew (Zipf-like), with rank
/// order shuffled deterministically by `seed` so hot pages are not simply
/// the object's prefix. Skew 0 yields uniform weights.
pub fn page_weights(num_pages: u64, skew: f64, seed: u64) -> Vec<f64> {
    let n = num_pages.max(1) as usize;
    if skew <= 0.0 {
        return vec![1.0 / n as f64; n];
    }
    let mut raw: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(skew)).collect();
    // Deterministic Fisher-Yates shuffle with a splitmix64 stream.
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        raw.swap(i, j);
    }
    let sum: f64 = raw.iter().sum();
    raw.iter_mut().for_each(|w| *w /= sum);
    raw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one_and_uniform_without_skew() {
        let w = page_weights(10, 0.0, 7);
        assert_eq!(w.len(), 10);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w.iter().all(|&x| (x - 0.1).abs() < 1e-12));
    }

    #[test]
    fn skewed_weights_concentrate() {
        let w = page_weights(100, 1.1, 42);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let mut sorted = w.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        let top10: f64 = sorted[..10].iter().sum();
        assert!(top10 > 0.35, "top-10 share {top10}");
    }

    #[test]
    fn weights_deterministic_per_seed() {
        assert_eq!(page_weights(32, 0.9, 5), page_weights(32, 0.9, 5));
        assert_ne!(page_weights(32, 0.9, 5), page_weights(32, 0.9, 6));
    }

    #[test]
    fn record_and_fraction() {
        let mut pt = PageTable::default();
        let first = pt.extend_for_object(ObjectId(0), Tier::Pm, vec![0.5, 0.3, 0.2]);
        assert_eq!(first, 0);
        pt.record_accesses(0..3, 100.0);
        assert!((pt.get(0).access_count - 50.0).abs() < 1e-12);
        assert!(pt.get(1).accessed);
        pt.set_tier(1, Tier::Dram);
        let f = pt.weighted_fraction_in(0..3, Tier::Dram);
        assert!((f - 0.3).abs() < 1e-12);
        assert_eq!(pt.bytes_in(Tier::Dram), PAGE_SIZE);
    }

    #[test]
    fn alternating_extend_matches_per_page_migrations() {
        let n = 37u64;
        let mut adv = PageTable::default();
        adv.extend_alternating_for_object(ObjectId(0), [Tier::Pm, Tier::Dram], n, 1.0 / n as f64);
        // Maximum fragmentation: one run per page, nothing coalesces.
        assert_eq!(adv.num_extents() as u64, n);
        let mut slow = PageTable::default();
        slow.extend_uniform_for_object(ObjectId(0), Tier::Pm, n, 1.0 / n as f64);
        for id in (1..n).step_by(2) {
            slow.set_tier(id, Tier::Dram);
        }
        adv.flush_aggregates();
        slow.flush_aggregates();
        assert_eq!(format!("{adv:?}"), format!("{slow:?}"));
        adv.debug_verify();
        // Same-tier striping degenerates to the fully-coalesced layout.
        let mut uni = PageTable::default();
        uni.extend_alternating_for_object(ObjectId(0), [Tier::Pm, Tier::Pm], 10, 0.1);
        assert_eq!(uni.num_extents(), 1);
    }

    #[test]
    fn alternating_extend_spills_across_shards() {
        // One page past a shard boundary: the second shard's base and the
        // parity (relative to the object start, not the shard) must hold.
        let n = SHARD_PAGES + 3;
        let mut adv = PageTable::default();
        adv.extend_alternating_for_object(ObjectId(0), [Tier::Pm, Tier::Dram], n, 1.0 / n as f64);
        assert_eq!(adv.num_extents() as u64, n);
        for id in [0, 1, SHARD_PAGES - 1, SHARD_PAGES, SHARD_PAGES + 1, n - 1] {
            let want = if id % 2 == 0 { Tier::Pm } else { Tier::Dram };
            assert_eq!(adv.get(id).tier(), want, "page {id}");
        }
        assert_eq!(adv.bytes_in(Tier::Pm), adv.recount_bytes_in(Tier::Pm));
        assert_eq!(adv.bytes_in(Tier::Dram), adv.recount_bytes_in(Tier::Dram));
        adv.debug_verify();
    }

    #[test]
    fn fast_path_matches_scan_after_flush() {
        let mut pt = PageTable::default();
        pt.extend_for_object(ObjectId(0), Tier::Pm, vec![0.4, 0.1, 0.25, 0.25]);
        pt.extend_for_object(ObjectId(1), Tier::Pm, vec![0.7, 0.3]);
        pt.set_tier(0, Tier::Dram);
        pt.set_tier(2, Tier::Dram);
        pt.set_tier(5, Tier::Dram);
        // Dirty: the query takes the scan path.
        let dirty_f = pt.weighted_fraction_in(0..4, Tier::Dram);
        pt.flush_aggregates();
        // Clean: the aggregate path must return the bit-identical value.
        let clean_f = pt.weighted_fraction_in(0..4, Tier::Dram);
        assert_eq!(dirty_f.to_bits(), clean_f.to_bits());
        assert_eq!(
            pt.weighted_fraction_in(4..6, Tier::Dram).to_bits(),
            0.3f64.to_bits()
        );
        // Counters always exact, flushed or not.
        assert_eq!(pt.bytes_in(Tier::Dram), pt.recount_bytes_in(Tier::Dram));
        assert_eq!(pt.bytes_in(Tier::Pm), pt.recount_bytes_in(Tier::Pm));
        pt.debug_verify();
    }

    #[test]
    fn partial_range_takes_scan_path() {
        let mut pt = PageTable::default();
        pt.extend_for_object(ObjectId(0), Tier::Pm, vec![0.5, 0.3, 0.2]);
        pt.set_tier(0, Tier::Dram);
        pt.flush_aggregates();
        // A sub-range never matches an aggregate; the scan must serve it.
        let f = pt.weighted_fraction_in(0..2, Tier::Dram);
        assert!((f - 0.5 / 0.8).abs() < 1e-12);
    }

    #[test]
    fn set_weight_invalidates_aggregate() {
        let mut pt = PageTable::default();
        pt.extend_for_object(ObjectId(0), Tier::Pm, vec![0.5, 0.5]);
        pt.set_tier(0, Tier::Dram);
        pt.flush_aggregates();
        assert_eq!(pt.weighted_fraction_in(0..2, Tier::Dram), 0.5);
        pt.set_weight(0, 0.9);
        pt.set_weight(1, 0.1);
        assert_eq!(pt.weighted_fraction_in(0..2, Tier::Dram), 0.9);
        pt.flush_aggregates();
        assert_eq!(pt.weighted_fraction_in(0..2, Tier::Dram), 0.9);
    }

    #[test]
    fn zero_weight_pages_not_marked_accessed() {
        let mut pt = PageTable::default();
        pt.extend_for_object(ObjectId(0), Tier::Pm, vec![1.0, 0.0]);
        pt.record_accesses(0..2, 10.0);
        assert!(pt.get(0).accessed);
        assert!(!pt.get(1).accessed);
    }

    #[test]
    fn barely_touched_pages_keep_bit_clear_but_count() {
        let mut pt = PageTable::default();
        pt.extend_for_object(ObjectId(0), Tier::Pm, vec![0.5, 0.5]);
        pt.record_accesses(0..2, 0.4); // 0.2 expected accesses per page
        assert!(!pt.get(0).accessed);
        assert!(pt.get(0).access_count > 0.0);
        pt.record_accesses(0..2, 10.0);
        assert!(pt.get(0).accessed);
    }

    #[test]
    fn quarantine_set_is_ordered_and_visible_in_debug() {
        let mut pt = PageTable::default();
        pt.extend_for_object(ObjectId(0), Tier::Dram, vec![0.5, 0.3, 0.2]);
        assert!(!pt.is_quarantined(1));
        assert_eq!(pt.quarantine_bytes(), 0);
        assert!(pt.quarantine_page(2));
        assert!(pt.quarantine_page(1));
        assert!(!pt.quarantine_page(1), "double-quarantine must be a no-op");
        assert!(pt.is_quarantined(1) && pt.is_quarantined(2));
        assert_eq!(pt.quarantined().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(pt.quarantined_count(), 2);
        assert_eq!(pt.quarantine_bytes(), 2 * PAGE_SIZE);
        assert!(pt.quarantined_in(0..3) && !pt.quarantined_in(0..1));
        // The set is part of the bitwise page-table fingerprint.
        let with = format!("{pt:?}");
        let mut clean = PageTable::default();
        clean.extend_for_object(ObjectId(0), Tier::Dram, vec![0.5, 0.3, 0.2]);
        assert_ne!(with, format!("{clean:?}"));
    }

    #[test]
    fn irregular_layout_falls_back_to_scan() {
        let mut pt = PageTable::default();
        // Out-of-order object id: aggregates disabled, queries still work.
        pt.extend_for_object(ObjectId(3), Tier::Pm, vec![0.5, 0.5]);
        pt.set_tier(1, Tier::Dram);
        pt.flush_aggregates();
        assert_eq!(pt.weighted_fraction_in(0..2, Tier::Dram), 0.5);
        assert_eq!(pt.bytes_in(Tier::Dram), PAGE_SIZE);
    }

    #[test]
    fn uniform_object_coalesces_to_one_run() {
        let mut pt = PageTable::default();
        pt.extend_for_object(ObjectId(0), Tier::Pm, vec![0.125; 8]);
        assert_eq!(pt.num_extents(), 1);
        // Mid-range migration splits, reverting re-merges.
        pt.set_tier_range(3..5, Tier::Dram);
        assert_eq!(pt.num_extents(), 3);
        assert_eq!(pt.bytes_in(Tier::Dram), 2 * PAGE_SIZE);
        pt.set_tier_range(3..5, Tier::Pm);
        assert_eq!(pt.num_extents(), 1);
        pt.debug_verify();
    }

    #[test]
    fn extend_uniform_matches_vector_extend() {
        let n = 1000u64;
        let w = 1.0 / n as f64;
        let mut a = PageTable::default();
        a.extend_for_object(ObjectId(0), Tier::Pm, vec![w; n as usize]);
        let mut b = PageTable::default();
        b.extend_uniform_for_object(ObjectId(0), Tier::Pm, n, w);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn set_tier_range_matches_per_page_loop() {
        let build = || {
            let mut pt = PageTable::default();
            pt.extend_for_object(ObjectId(0), Tier::Pm, page_weights(100, 1.3, 9));
            pt.extend_for_object(ObjectId(1), Tier::Pm, vec![0.01; 100]);
            pt
        };
        let mut batch = build();
        let mut loopy = build();
        batch.set_tier_range(37..141, Tier::Dram);
        for id in 37..141 {
            loopy.set_tier(id, Tier::Dram);
        }
        batch.flush_aggregates();
        loopy.flush_aggregates();
        assert_eq!(format!("{batch:?}"), format!("{loopy:?}"));
        batch.debug_verify();
    }

    #[test]
    fn nth_page_in_tier_walks_runs() {
        let mut pt = PageTable::default();
        pt.extend_for_object(ObjectId(0), Tier::Pm, vec![0.1; 10]);
        pt.set_tier_range(2..4, Tier::Dram);
        pt.set_tier_range(7..9, Tier::Dram);
        assert_eq!(pt.nth_page_in_tier(Tier::Dram, 0), Some(2));
        assert_eq!(pt.nth_page_in_tier(Tier::Dram, 2), Some(7));
        assert_eq!(pt.nth_page_in_tier(Tier::Dram, 3), Some(8));
        assert_eq!(pt.nth_page_in_tier(Tier::Dram, 4), None);
        assert_eq!(pt.nth_page_in_tier(Tier::Pm, 2), Some(4));
    }

    #[test]
    fn runs_never_cross_shard_boundaries_and_sums_are_job_independent() {
        let n = SHARD_PAGES * 2 + 17;
        let mut pt = PageTable::default();
        pt.extend_uniform_for_object(ObjectId(0), Tier::Pm, n, 1.0 / n as f64);
        assert_eq!(pt.num_extents(), 3);
        pt.set_tier_range(SHARD_PAGES - 5..SHARD_PAGES + 5, Tier::Dram);
        pt.debug_verify();
        let mut reference = RefTable::default();
        reference.extend_for_object(ObjectId(0), Tier::Pm, vec![1.0 / n as f64; n as usize]);
        reference.set_tier_range(SHARD_PAGES - 5..SHARD_PAGES + 5, Tier::Dram);
        let spec = reference.scan_weight_sums(0..n);
        let prev = engine_jobs();
        for jobs in [1, 2, 7] {
            set_engine_jobs(jobs);
            let got = pt.scan_weight_sums(0..n);
            assert_eq!(got.0.to_bits(), spec.0.to_bits(), "jobs={jobs}");
            assert_eq!(got.1[0].to_bits(), spec.1[0].to_bits(), "jobs={jobs}");
            assert_eq!(got.1[1].to_bits(), spec.1[1].to_bits(), "jobs={jobs}");
        }
        set_engine_jobs(prev);
        reference.assert_matches(&pt);
    }

    #[test]
    fn ref_table_tracks_engine_through_mixed_ops() {
        let mut pt = PageTable::default();
        let mut rt = RefTable::default();
        let w = page_weights(50, 1.1, 3);
        pt.extend_for_object(ObjectId(0), Tier::Pm, w.clone());
        rt.extend_for_object(ObjectId(0), Tier::Pm, w);
        pt.set_tier_range(10..30, Tier::Dram);
        rt.set_tier_range(10..30, Tier::Dram);
        pt.record_accesses(0..50, 64.0);
        rt.record_accesses(0..50, 64.0);
        pt.age_access_counts(0.5);
        rt.age_access_counts(0.5);
        pt.bump_migrations_range(10..30);
        rt.bump_migrations_range(10..30);
        pt.quarantine_page(12);
        rt.quarantine_page(12);
        pt.set_tier(12, Tier::Pm);
        rt.set_tier(12, Tier::Pm);
        pt.flush_aggregates();
        rt.assert_matches(&pt);
        let f = pt.weighted_fraction_in(0..50, Tier::Dram);
        assert_eq!(
            f.to_bits(),
            rt.scan_weighted_fraction_in(0..50, Tier::Dram).to_bits()
        );
    }
}
