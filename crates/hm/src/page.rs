//! Pages and the emulated page table.
//!
//! Each 4 KiB page carries the state real tiering systems read and write:
//! current tier, an *accessed* bit (the PTE bit profilers scan and reset),
//! and a saturating access counter. A per-page *weight* models how the
//! object's accesses distribute over its pages (uniform for streaming
//! objects, skewed for random-pattern objects with hot entries) — this is
//! what makes hot-page detection meaningful in the emulation.

use serde::{Deserialize, Serialize};

use crate::config::Tier;
use crate::object::ObjectId;

/// Page size of the emulated system (4 KiB, as in the paper's profilers).
pub const PAGE_SIZE: u64 = 4096;

/// Pages per 2 MiB huge region (Thermostat samples one 4 KiB page per 2 MiB).
pub const PAGES_PER_HUGE_REGION: u64 = (2 << 20) / PAGE_SIZE;

/// Global page identifier.
pub type PageId = u64;

/// Per-page metadata (an emulated PTE plus profiling counters).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PageInfo {
    /// Object the page belongs to.
    pub object: ObjectId,
    /// Tier the page currently resides on.
    pub tier: Tier,
    /// Fraction of the object's accesses that land on this page (sums to 1
    /// over the object's pages).
    pub weight: f64,
    /// Emulated PTE accessed bit; set by execution, cleared by profilers.
    pub accessed: bool,
    /// Accumulated access count since the last profiler reset.
    pub access_count: f64,
    /// Lifetime migration count (for overhead accounting / tests).
    pub migrations: u32,
}

/// The emulated page table: flat vector of [`PageInfo`] indexed by
/// [`PageId`].
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct PageTable {
    pages: Vec<PageInfo>,
}

impl PageTable {
    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Append pages for a new object; returns the first new page id.
    pub fn extend_for_object(
        &mut self,
        object: ObjectId,
        tier: Tier,
        weights: impl IntoIterator<Item = f64>,
    ) -> PageId {
        let first = self.pages.len() as PageId;
        for w in weights {
            self.pages.push(PageInfo {
                object,
                tier,
                weight: w,
                accessed: false,
                access_count: 0.0,
                migrations: 0,
            });
        }
        first
    }

    /// Append one fully-specified page (checkpoint restore only; normal
    /// allocation goes through [`extend_for_object`](Self::extend_for_object)).
    pub fn push_raw(&mut self, page: PageInfo) {
        self.pages.push(page);
    }

    /// Immutable page lookup.
    pub fn get(&self, id: PageId) -> &PageInfo {
        &self.pages[id as usize]
    }

    /// Mutable page lookup.
    pub fn get_mut(&mut self, id: PageId) -> &mut PageInfo {
        &mut self.pages[id as usize]
    }

    /// Iterate over `(PageId, &PageInfo)`.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, &PageInfo)> {
        self.pages.iter().enumerate().map(|(i, p)| (i as PageId, p))
    }

    /// Record `accesses` object-level accesses over the page range
    /// `range`, distributing them by page weight. The accessed bit is only
    /// set when at least half an access is expected to land on the page
    /// this interval — a page touched once every hundred rounds does not
    /// have its PTE bit set every round on real hardware.
    pub fn record_accesses(&mut self, range: std::ops::Range<PageId>, accesses: f64) {
        for id in range {
            let p = &mut self.pages[id as usize];
            let share = accesses * p.weight;
            if share > 0.0 {
                p.access_count += share;
                if share >= 0.5 {
                    p.accessed = true;
                }
            }
        }
    }

    /// Weighted fraction of the range currently resident in `tier`.
    pub fn weighted_fraction_in(&self, range: std::ops::Range<PageId>, tier: Tier) -> f64 {
        let mut total = 0.0;
        let mut in_tier = 0.0;
        for id in range {
            let p = &self.pages[id as usize];
            total += p.weight;
            if p.tier == tier {
                in_tier += p.weight;
            }
        }
        if total > 0.0 {
            in_tier / total
        } else {
            0.0
        }
    }

    /// Bytes of the whole table resident in `tier`.
    pub fn bytes_in(&self, tier: Tier) -> u64 {
        self.pages.iter().filter(|p| p.tier == tier).count() as u64 * PAGE_SIZE
    }
}

/// Generate per-page weights for an object of `num_pages` pages with the
/// given skew: weight(page k) ∝ 1 / (k_rank + 1)^skew (Zipf-like), with rank
/// order shuffled deterministically by `seed` so hot pages are not simply
/// the object's prefix. Skew 0 yields uniform weights.
pub fn page_weights(num_pages: u64, skew: f64, seed: u64) -> Vec<f64> {
    let n = num_pages.max(1) as usize;
    if skew <= 0.0 {
        return vec![1.0 / n as f64; n];
    }
    let mut raw: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(skew)).collect();
    // Deterministic Fisher-Yates shuffle with a splitmix64 stream.
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        raw.swap(i, j);
    }
    let sum: f64 = raw.iter().sum();
    raw.iter_mut().for_each(|w| *w /= sum);
    raw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one_and_uniform_without_skew() {
        let w = page_weights(10, 0.0, 7);
        assert_eq!(w.len(), 10);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w.iter().all(|&x| (x - 0.1).abs() < 1e-12));
    }

    #[test]
    fn skewed_weights_concentrate() {
        let w = page_weights(100, 1.1, 42);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let mut sorted = w.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        let top10: f64 = sorted[..10].iter().sum();
        assert!(top10 > 0.35, "top-10 share {top10}");
    }

    #[test]
    fn weights_deterministic_per_seed() {
        assert_eq!(page_weights(32, 0.9, 5), page_weights(32, 0.9, 5));
        assert_ne!(page_weights(32, 0.9, 5), page_weights(32, 0.9, 6));
    }

    #[test]
    fn record_and_fraction() {
        let mut pt = PageTable::default();
        let first = pt.extend_for_object(ObjectId(0), Tier::Pm, vec![0.5, 0.3, 0.2]);
        assert_eq!(first, 0);
        pt.record_accesses(0..3, 100.0);
        assert!((pt.get(0).access_count - 50.0).abs() < 1e-12);
        assert!(pt.get(1).accessed);
        pt.get_mut(1).tier = Tier::Dram;
        let f = pt.weighted_fraction_in(0..3, Tier::Dram);
        assert!((f - 0.3).abs() < 1e-12);
        assert_eq!(pt.bytes_in(Tier::Dram), PAGE_SIZE);
    }

    #[test]
    fn zero_weight_pages_not_marked_accessed() {
        let mut pt = PageTable::default();
        pt.extend_for_object(ObjectId(0), Tier::Pm, vec![1.0, 0.0]);
        pt.record_accesses(0..2, 10.0);
        assert!(pt.get(0).accessed);
        assert!(!pt.get(1).accessed);
    }

    #[test]
    fn barely_touched_pages_keep_bit_clear_but_count() {
        let mut pt = PageTable::default();
        pt.extend_for_object(ObjectId(0), Tier::Pm, vec![0.5, 0.5]);
        pt.record_accesses(0..2, 0.4); // 0.2 expected accesses per page
        assert!(!pt.get(0).accessed);
        assert!(pt.get(0).access_count > 0.0);
        pt.record_accesses(0..2, 10.0);
        assert!(pt.get(0).accessed);
    }
}
