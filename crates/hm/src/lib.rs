//! Emulated two-tier heterogeneous memory (HM) and task-parallel runtime.
//!
//! The paper evaluates on a two-socket server with 192 GB DRAM + 1.5 TB
//! Intel Optane PM in App Direct mode. This crate replaces that hardware
//! with a software emulation whose *relative* performance is calibrated to
//! the published Optane-vs-DRAM characterisation the paper cites in §2:
//! sequential/random read latency 2.08×/3.77× longer on PM, read/write peak
//! bandwidth 3.87×/4.74× lower on PM, and the peak lines of Figure 6
//! (DRAM ≈ 180 GB/s, PM ≈ 52 GB/s).
//!
//! Components:
//!
//! * [`config`] — tier parameters and the calibrated defaults;
//! * [`object`]/[`page`] — data objects and the extent page table: 4 KiB
//!   pages with access weights and counters (the emulated PTE accessed
//!   bits) stored as contiguous same-state runs, sharded by page range so
//!   round phases parallelise with deterministic merges;
//! * [`system`] — [`system::HmSystem`]: allocation, placement, migration
//!   with capacity management, page-level profiling state;
//! * [`trace`] — phase-level access summaries emitted by workloads and the
//!   program-access → main-memory-access model (caching effect);
//! * [`cost`] — the roofline-style execution-time model (latency, bandwidth,
//!   MLP, compute overlap) that converts a placement into task time;
//! * [`telemetry`] — per-tier bandwidth timelines (Figure 6);
//! * [`workload`] — the [`workload::Workload`] trait task-parallel
//!   applications implement;
//! * [`runtime`] — [`runtime::PlacementPolicy`] and the executor that runs
//!   task instances in parallel rounds with a synchronisation barrier;
//! * [`checkpoint`] — round-granular checkpoint/WAL for supervised runs
//!   (crash→restore→replay is bit-identical to an uninterrupted run);
//! * [`topk`] — deterministic top-k hot/cold page selection shared by
//!   migration, eviction, and every policy ranking;
//! * [`backoff`] — bounded retry with deterministic jitter, shared by page
//!   migration, checkpoint writes, and admission retry-after responses;
//! * [`fault`] — deterministic fault injection (migration failures, sample
//!   dropout, co-tenant pressure, telemetry blackout, scripted crashes);
//! * [`service`] — placement-as-a-service: a multi-tenant registry with
//!   per-tenant DRAM quotas, bounded-queue admission control, deficit
//!   round-robin scheduling, hard fault isolation, and per-tenant SLO
//!   reports.

pub mod backoff;
pub mod checkpoint;
pub mod config;
pub mod cost;
pub mod epoch;
pub mod fault;
pub mod object;
pub mod page;
pub mod runtime;
pub mod service;
pub mod system;
pub mod telemetry;
pub mod topk;
pub mod trace;
pub mod workload;

/// Cache-line size of the emulated machine (bytes).
pub const CACHE_LINE_BYTES: usize = merch_patterns::CACHE_LINE;

pub use backoff::Backoff;
pub use checkpoint::{BreakerFrame, Checkpoint, Wal, WalStats, CHECKPOINT_VERSION};
pub use config::{HmConfig, Tier, TierParams};
pub use cost::{phase_cost_detail, PhaseCostDetail, Regime};
pub use epoch::{decode_journal, EpochIntent, EpochOutcome, EPOCH_JOURNAL_VERSION};
pub use fault::{CrashPoint, FaultInjector, FaultKind, FaultPlan, FaultStats, FaultSummary};
pub use object::{DataObject, ObjectId, ObjectSpec};
pub use page::{
    engine_jobs, set_engine_jobs, PageId, PageInfo, PageTable, RefTable, Run, PAGE_SIZE,
    SHARD_PAGES,
};
pub use runtime::{Executor, PlacementPolicy, RoundReport, RunReport, TaskResult, WatchdogConfig};
pub use service::{
    BreakerConfig, BreakerState, PlacementService, ServiceConfig, ServiceReport, ShedReason,
    SubmitOutcome, TenantId, TenantJob, TenantReport, TenantSpec, TenantStatus,
};
pub use system::HmSystem;
pub use telemetry::{BandwidthTimeline, Warning};
pub use topk::{
    cold_pages_top_k, expand_cold_runs_top_k, expand_hot_runs_top_k, hot_pages_top_k, CandidateRun,
};
pub use trace::{memory_accesses, ObjectAccess, Phase, TaskWork};
pub use workload::{TaskId, Workload};
