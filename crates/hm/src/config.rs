//! Tier parameters and calibrated defaults for the emulated HM.

use serde::{Deserialize, Serialize};

/// Memory tier identifier: fast (DRAM) or slow (PM / Optane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Fast tier: DDR4 DRAM.
    Dram,
    /// Slow tier: Optane persistent memory (App Direct mode).
    Pm,
}

impl Tier {
    /// The other tier.
    pub fn other(self) -> Tier {
        match self {
            Tier::Dram => Tier::Pm,
            Tier::Pm => Tier::Dram,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Tier::Dram => "DRAM",
            Tier::Pm => "PM",
        })
    }
}

/// Performance and capacity parameters of one memory tier.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TierParams {
    /// Idle load-to-use latency for sequential (prefetch-friendly) access, ns.
    pub latency_seq_ns: f64,
    /// Idle load-to-use latency for dependent random access, ns.
    pub latency_rand_ns: f64,
    /// Peak read bandwidth, GB/s (socket aggregate).
    pub read_bw_gbps: f64,
    /// Peak write bandwidth, GB/s (socket aggregate).
    pub write_bw_gbps: f64,
    /// Capacity in bytes.
    pub capacity: u64,
}

impl TierParams {
    /// Effective bandwidth for a read/write mix, GB/s: harmonic combination
    /// of the two peaks (`write_fraction` ∈ 0..1).
    pub fn mixed_bw_gbps(&self, write_fraction: f64) -> f64 {
        let w = write_fraction.clamp(0.0, 1.0);
        1.0 / ((1.0 - w) / self.read_bw_gbps + w / self.write_bw_gbps)
    }
}

/// Full configuration of the emulated heterogeneous memory system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HmConfig {
    /// Fast-tier parameters.
    pub dram: TierParams,
    /// Slow-tier parameters.
    pub pm: TierParams,
    /// Last-level cache size in bytes (drives the caching-effect model for
    /// random patterns).
    pub llc_bytes: u64,
    /// Fraction of the socket peak a single task can draw (memory
    /// controllers limit per-core streams).
    pub per_task_bw_cap: f64,
    /// Overlap coefficient between DRAM-side and PM-side memory time of the
    /// same phase (1 = perfectly parallel, 0 = fully serialised).
    pub tier_overlap: f64,
    /// Cost of migrating one 4 KiB page, ns (read from source + write to
    /// destination + kernel bookkeeping).
    pub page_migration_ns: f64,
    /// Number of hardware threads available to overlap migration work.
    pub migration_parallelism: f64,
}

impl HmConfig {
    /// Calibrated configuration reproducing the paper's platform *ratios* at
    /// a laptop-friendly scale: PM/DRAM sequential read latency 2.08×,
    /// random 3.77×, read bandwidth 3.87× lower, write 4.74× lower
    /// (§2, citing the Optane characterisation studies), DRAM peak
    /// 180 GB/s and PM peak ≈ 52 GB/s as in Figure 6.
    ///
    /// `dram_capacity` and `pm_capacity` are free parameters because the
    /// evaluation scales the working sets down; the paper's machine had a
    /// 1 : 8 DRAM : PM ratio (192 GB : 1.5 TB).
    pub fn calibrated(dram_capacity: u64, pm_capacity: u64) -> Self {
        let dram = TierParams {
            latency_seq_ns: 80.0,
            latency_rand_ns: 100.0,
            read_bw_gbps: 180.0,
            write_bw_gbps: 90.0,
            capacity: dram_capacity,
        };
        let pm = TierParams {
            latency_seq_ns: 80.0 * 2.08,
            latency_rand_ns: 100.0 * 3.77,
            read_bw_gbps: 180.0 / 3.87,
            write_bw_gbps: 90.0 / 4.74,
            capacity: pm_capacity,
        };
        Self {
            dram,
            pm,
            // The paper's machine has ~71.5 MB of LLC for 192 GB of DRAM
            // (ratio ≈ 1 : 2700). Keeping the LLC : DRAM ratio when the
            // capacities are scaled down preserves the *relative* caching
            // effect — with a fixed 32 MB LLC, the scaled working sets
            // would be cache-resident and data placement would stop
            // mattering, unlike on the real machine. The ratio is clamped
            // to a sane window for extreme configurations.
            llc_bytes: (dram_capacity / 2700).clamp(64 << 10, 72 << 20),
            per_task_bw_cap: 0.35,
            // κ = 1 − tier_overlap = 0.5 keeps task time monotonically
            // decreasing in the DRAM access fraction (the paper's rationale
            // (2) for Eq. 2): the worst PM : DRAM performance ratio is the
            // 2.08× sequential latency, and κ ≥ 1/2.08 guarantees that
            // shifting accesses to DRAM never lengthens the phase.
            tier_overlap: 0.5,
            page_migration_ns: 2_500.0, // ~4 KiB over mixed-tier bw + fault cost
            migration_parallelism: 4.0,
        }
    }

    /// A CXL-attached DRAM expander as the slow tier (§5.3 Extensibility:
    /// "Merchandiser can be easily extended to other HM systems"). CXL
    /// memory is byte-addressable DRAM behind a CXL 2.0 link: roughly
    /// +130 ns added latency on every access (no sequential/random split —
    /// it is still DRAM underneath), about half the bandwidth of local
    /// DRAM, and *no* read/write asymmetry — a very different performance
    /// profile from Optane, which is exactly what the extensibility claim
    /// is about.
    pub fn cxl_calibrated(dram_capacity: u64, cxl_capacity: u64) -> Self {
        let mut c = Self::calibrated(dram_capacity, cxl_capacity);
        c.pm = TierParams {
            latency_seq_ns: c.dram.latency_seq_ns + 130.0,
            latency_rand_ns: c.dram.latency_rand_ns + 130.0,
            read_bw_gbps: c.dram.read_bw_gbps * 0.5,
            write_bw_gbps: c.dram.write_bw_gbps * 0.5,
            capacity: cxl_capacity,
        };
        c
    }

    /// Parameters of `tier`.
    pub fn tier(&self, tier: Tier) -> &TierParams {
        match tier {
            Tier::Dram => &self.dram,
            Tier::Pm => &self.pm,
        }
    }

    /// DRAM : PM capacity ratio mirroring the paper's machine (1 : 8) at a
    /// scaled-down total. `dram_capacity` fixes the fast tier; PM is 8×.
    pub fn scaled(dram_capacity: u64) -> Self {
        Self::calibrated(dram_capacity, dram_capacity * 8)
    }

    /// A copy of this configuration with one tier degraded: latencies
    /// multiplied by `lat_mult` and bandwidths by `bw_mult`. Models a
    /// thermal/contention degradation window (ECC scrubbing storms, patrol
    /// reads, media wear-leveling) during which a device serves requests
    /// slower without losing capacity. Capacity is intentionally untouched —
    /// capacity loss is a separate fault dimension (offlining).
    pub fn degraded(&self, tier: Tier, lat_mult: f64, bw_mult: f64) -> Self {
        let mut c = self.clone();
        let t = match tier {
            Tier::Dram => &mut c.dram,
            Tier::Pm => &mut c.pm,
        };
        t.latency_seq_ns *= lat_mult;
        t.latency_rand_ns *= lat_mult;
        t.read_bw_gbps *= bw_mult;
        t.write_bw_gbps *= bw_mult;
        c
    }
}

impl Default for HmConfig {
    /// Default scale: 256 MiB DRAM + 2 GiB PM — large enough for the scaled
    /// workloads, small enough for CI.
    fn default() -> Self {
        Self::scaled(256 << 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_ratios_match_paper() {
        let c = HmConfig::default();
        assert!((c.pm.latency_seq_ns / c.dram.latency_seq_ns - 2.08).abs() < 1e-9);
        assert!((c.pm.latency_rand_ns / c.dram.latency_rand_ns - 3.77).abs() < 1e-9);
        assert!((c.dram.read_bw_gbps / c.pm.read_bw_gbps - 3.87).abs() < 1e-9);
        assert!((c.dram.write_bw_gbps / c.pm.write_bw_gbps - 4.74).abs() < 1e-9);
        assert_eq!(c.pm.capacity, c.dram.capacity * 8);
    }

    #[test]
    fn mixed_bw_between_read_and_write_peaks() {
        let c = HmConfig::default();
        let read_only = c.pm.mixed_bw_gbps(0.0);
        let write_only = c.pm.mixed_bw_gbps(1.0);
        let mixed = c.pm.mixed_bw_gbps(0.5);
        assert!((read_only - c.pm.read_bw_gbps).abs() < 1e-9);
        assert!((write_only - c.pm.write_bw_gbps).abs() < 1e-9);
        assert!(mixed < read_only && mixed > write_only);
    }

    #[test]
    fn cxl_profile_differs_from_optane() {
        let cxl = HmConfig::cxl_calibrated(256 << 20, 2 << 30);
        // No read/write asymmetry beyond local DRAM's own.
        assert!(
            (cxl.pm.read_bw_gbps / cxl.pm.write_bw_gbps
                - cxl.dram.read_bw_gbps / cxl.dram.write_bw_gbps)
                .abs()
                < 1e-9
        );
        // Flat added latency: sequential and random penalties are equal.
        assert!(
            ((cxl.pm.latency_seq_ns - cxl.dram.latency_seq_ns)
                - (cxl.pm.latency_rand_ns - cxl.dram.latency_rand_ns))
                .abs()
                < 1e-9
        );
        // Milder than Optane across the board.
        let optane = HmConfig::calibrated(256 << 20, 2 << 30);
        assert!(cxl.pm.latency_rand_ns < optane.pm.latency_rand_ns);
        assert!(cxl.pm.read_bw_gbps > optane.pm.read_bw_gbps);
    }

    #[test]
    fn degraded_scales_one_tier_only() {
        let base = HmConfig::default();
        let d = base.degraded(Tier::Pm, 2.0, 0.5);
        assert!((d.pm.latency_seq_ns - base.pm.latency_seq_ns * 2.0).abs() < 1e-9);
        assert!((d.pm.latency_rand_ns - base.pm.latency_rand_ns * 2.0).abs() < 1e-9);
        assert!((d.pm.read_bw_gbps - base.pm.read_bw_gbps * 0.5).abs() < 1e-9);
        assert!((d.pm.write_bw_gbps - base.pm.write_bw_gbps * 0.5).abs() < 1e-9);
        assert_eq!(d.pm.capacity, base.pm.capacity);
        // The other tier is bitwise untouched.
        assert_eq!(format!("{:?}", d.dram), format!("{:?}", base.dram));
        // Identity multipliers are bitwise a no-op.
        let id = base.degraded(Tier::Dram, 1.0, 1.0);
        assert_eq!(format!("{id:?}"), format!("{base:?}"));
    }

    #[test]
    fn tier_other_roundtrip() {
        assert_eq!(Tier::Dram.other(), Tier::Pm);
        assert_eq!(Tier::Pm.other(), Tier::Dram);
        assert_eq!(Tier::Dram.to_string(), "DRAM");
    }
}
