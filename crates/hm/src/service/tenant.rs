//! Tenant identity, declared resource contract, and lifecycle state.
//!
//! A *tenant* is one submitted job: a workload + policy pair with a
//! declared DRAM quota, a scheduling weight, a priority class, and an
//! optional completion deadline. The registry owns every tenant ever
//! submitted — including rejected and shed ones — so the final
//! [`ServiceReport`](crate::service::ServiceReport) accounts for the whole
//! offered load, not just the admitted survivors.

use serde::{Deserialize, Serialize};

use super::TenantJob;
use crate::checkpoint::BreakerFrame;

/// Dense tenant handle, assigned in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TenantId(pub u32);

/// Declared resource contract of a submitted tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Human-readable tenant name (unique per scenario by convention).
    pub name: String,
    /// Deficit-round-robin weight (service share is proportional to this;
    /// must be ≥ 1).
    pub weight: u32,
    /// Priority class: under overload, lower-priority tenants are squeezed
    /// or shed first. Higher numbers are more important.
    pub priority: u8,
    /// Requested DRAM quota, bytes.
    pub dram_quota: u64,
    /// Squeeze floor, bytes: the admission controller may grant as little
    /// as this under overload. Must be ≤ `dram_quota`; equal means the
    /// tenant is unsqueezable.
    pub min_dram_quota: u64,
    /// Completion deadline on the service's virtual clock, ns.
    /// `f64::INFINITY` means no deadline. A tenant still queued at its
    /// deadline is shed; a running tenant that finishes late is recorded
    /// as a deadline miss in its [`TenantReport`](super::TenantReport).
    pub deadline_ns: f64,
}

impl TenantSpec {
    /// A spec with the given name and quota, weight 1, priority 0, an
    /// unsqueezable floor, and no deadline.
    pub fn new(name: impl Into<String>, dram_quota: u64) -> Self {
        Self {
            name: name.into(),
            weight: 1,
            priority: 0,
            dram_quota,
            min_dram_quota: dram_quota,
            deadline_ns: f64::INFINITY,
        }
    }

    /// Set the DRR weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Set the priority class.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Set the squeeze floor.
    pub fn with_min_quota(mut self, min_dram_quota: u64) -> Self {
        self.min_dram_quota = min_dram_quota;
        self
    }

    /// Set the completion deadline (virtual ns).
    pub fn with_deadline_ns(mut self, deadline_ns: f64) -> Self {
        self.deadline_ns = deadline_ns;
        self
    }

    /// Contract sanity: weight ≥ 1, floor ≤ quota, deadline not NaN.
    pub fn validate(&self) -> Result<(), String> {
        if self.weight == 0 {
            return Err(format!("tenant {}: weight must be >= 1", self.name));
        }
        if self.min_dram_quota > self.dram_quota {
            return Err(format!(
                "tenant {}: min_dram_quota {} exceeds dram_quota {}",
                self.name, self.min_dram_quota, self.dram_quota
            ));
        }
        if self.deadline_ns.is_nan() {
            return Err(format!("tenant {}: deadline is NaN", self.name));
        }
        Ok(())
    }
}

/// Why a tenant was refused or evicted from the submission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The bounded submission queue was full and the tenant did not outrank
    /// any queued tenant (or was displaced by a higher-priority arrival).
    QueueFull,
    /// The tenant was still queued when its deadline passed.
    DeadlineExpired,
    /// The tenant's squeeze floor exceeds the whole pool — it can never be
    /// admitted; retrying is pointless.
    CapacityExceeded,
}

/// Lifecycle state of a tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TenantStatus {
    /// Waiting in the submission queue for a grant.
    Queued,
    /// Admitted and being scheduled.
    Running,
    /// All rounds executed.
    Completed,
    /// A fault (scripted crash or unrecoverable error) fired inside this
    /// tenant's round; its grant was released and no further rounds run.
    /// Only this tenant is affected — co-tenants keep their own ladder
    /// rung, sentinel state, and checkpoint blobs.
    Quarantined {
        /// Round in which the fault fired.
        round: u64,
    },
    /// Refused admission or evicted from the queue.
    Shed(ShedReason),
}

/// One registry record: contract, lifecycle, accounting, and the boxed
/// executor driving the tenant's rounds.
pub struct Tenant {
    /// Handle (index into the registry).
    pub id: TenantId,
    /// Declared contract.
    pub spec: TenantSpec,
    /// Lifecycle state.
    pub status: TenantStatus,
    /// Bytes actually granted at admission (`None` until admitted; kept
    /// after completion for the report).
    pub granted_quota: Option<u64>,
    /// Virtual time of submission, ns.
    pub submitted_at_ns: f64,
    /// Virtual time of admission, ns.
    pub admitted_at_ns: Option<f64>,
    /// Virtual time of completion (or quarantine), ns.
    pub finished_at_ns: Option<f64>,
    /// DRR deficit counter, ns of service credit.
    pub deficit_ns: f64,
    /// Total round time served to this tenant, ns.
    pub service_ns: f64,
    /// Rounds completed under the service.
    pub rounds_done: u64,
    /// Rounds where DRAM residency exceeded the grant (must stay 0; a
    /// non-zero count is an isolation-invariant violation).
    pub quota_violations: u64,
    /// Retry-after responses issued to this tenant at submission time.
    pub retry_responses: u32,
    /// Circuit-breaker state (DESIGN.md §17): strikes, trips, and the
    /// Open/Half-Open bookkeeping. All-default for a healthy tenant.
    pub breaker: BreakerFrame,
    /// Checkpoint payload captured when the breaker last tripped; consumed
    /// by the Half-Open probe's in-place restore. `None` while Closed.
    pub trip_checkpoint: Option<String>,
    /// The tenant's executor. Present from submission until the registry
    /// is dropped (quarantined tenants keep theirs for the post-mortem
    /// report).
    pub job: Box<dyn TenantJob>,
}

impl Tenant {
    /// Is this tenant eligible for the scheduler? Running, and not
    /// suspended by an Open breaker (Half-Open tenants *are* runnable —
    /// their probe rounds go through the ordinary scheduler).
    pub fn runnable(&self) -> bool {
        self.status == TenantStatus::Running && !self.breaker.is_open()
    }
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("id", &self.id)
            .field("spec", &self.spec)
            .field("status", &self.status)
            .field("granted_quota", &self.granted_quota)
            .field("service_ns", &self.service_ns)
            .field("rounds_done", &self.rounds_done)
            .field("breaker", &self.breaker)
            .finish_non_exhaustive()
    }
}
