//! Deficit-round-robin scheduling over tenant weight.
//!
//! The service interleaves whole rounds (a round is the natural preemption
//! point of the paper's task-parallel model: placement decisions and the
//! barrier both live there). Classic DRR grants each runnable tenant a
//! per-cycle quantum proportional to its weight; a tenant's deficit pays
//! for the wall time of the rounds it runs. Long-round tenants thus yield
//! to short-round tenants until their credit recovers, and the asymptotic
//! service share of tenant *i* converges to `wᵢ / Σw` regardless of round
//! granularity (lag is bounded by one maximum round time per cycle).

use super::tenant::{Tenant, TenantId};

/// Deficit-round-robin scheduler state.
#[derive(Debug)]
pub struct DrrScheduler {
    /// Credit granted per weight unit per top-up cycle, ns.
    pub quantum_ns: f64,
}

impl DrrScheduler {
    /// A scheduler with the given per-weight quantum.
    pub fn new(quantum_ns: f64) -> Self {
        Self { quantum_ns }
    }

    /// Pick the next tenant to run one round: the runnable tenant with the
    /// largest positive deficit (ties broken by lowest id, so the choice
    /// is deterministic). When no runnable tenant has positive credit, a
    /// top-up cycle adds `quantum × weight` to every runnable tenant and
    /// the pick repeats. Returns `None` when nothing is runnable.
    pub fn pick(&self, tenants: &mut [Tenant]) -> Option<TenantId> {
        if !tenants.iter().any(|t| t.runnable()) {
            return None;
        }
        loop {
            let best = tenants
                .iter()
                .filter(|t| t.runnable() && t.deficit_ns > 0.0)
                .max_by(|a, b| {
                    // Deficits are finite by construction; a NaN (which
                    // would mean a NaN round time leaked in) degrades to a
                    // tie, resolved by the deterministic id order below,
                    // instead of panicking mid-schedule.
                    a.deficit_ns
                        .partial_cmp(&b.deficit_ns)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(b.id.0.cmp(&a.id.0))
                })
                .map(|t| t.id);
            if let Some(id) = best {
                return Some(id);
            }
            for t in tenants.iter_mut() {
                if t.runnable() {
                    t.deficit_ns += self.quantum_ns * t.spec.weight as f64;
                }
            }
        }
    }

    /// Charge tenant `id` for a round it just ran.
    pub fn charge(&self, tenants: &mut [Tenant], id: TenantId, round_time_ns: f64) {
        let t = &mut tenants[id.0 as usize];
        t.deficit_ns -= round_time_ns;
        t.service_ns += round_time_ns;
    }
}
