//! Admission control: bounded submission queue, priority-ordered grants
//! with overload squeezing, deadline shedding, and `Backoff`-driven
//! retry-after responses.
//!
//! The controller never lets the sum of outstanding grants exceed the
//! pool, so quota isolation is enforced *before* any tenant runs: a
//! tenant's `HmSystem` gets its grant as a hard
//! [`dram_quota`](crate::system::HmSystem::set_dram_quota) and the
//! scheduler never has to claw memory back mid-round.

use crate::backoff::Backoff;

use super::tenant::{ShedReason, Tenant, TenantId, TenantStatus};

/// Outcome of a submission attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubmitOutcome {
    /// Registered and queued for admission.
    Enqueued(TenantId),
    /// Refused. `retry_after_ns` is the deterministic backoff the service
    /// suggests before resubmitting (`f64::INFINITY` when retrying can
    /// never help, e.g. the floor exceeds the pool).
    Rejected {
        /// Registry handle of the refused tenant (its record is kept for
        /// the report).
        id: TenantId,
        /// Why it was refused.
        reason: ShedReason,
        /// Suggested wait before resubmission, ns.
        retry_after_ns: f64,
    },
}

/// One admission grant produced by [`AdmissionController::admit_pass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// Admitted tenant.
    pub id: TenantId,
    /// Granted DRAM bytes (≤ requested quota, ≥ squeeze floor).
    pub granted: u64,
}

/// Bounded-queue admission controller.
#[derive(Debug)]
pub struct AdmissionController {
    /// Pool size, bytes.
    pub total_dram_bytes: u64,
    /// Submission-queue bound.
    pub max_queue: usize,
    /// Hard cap on suggested retry-after delays, ns.
    pub retry_cap_ns: u64,
    /// Retry budget encoded in retry-after responses.
    pub max_retries: u32,
    /// Seed for the deterministic retry-after jitter.
    pub seed: u64,
    /// Queued tenants, submission order.
    queue: Vec<TenantId>,
}

impl AdmissionController {
    /// A controller over a pool of `total_dram_bytes`.
    pub fn new(total_dram_bytes: u64, max_queue: usize, retry_cap_ns: u64, seed: u64) -> Self {
        Self {
            total_dram_bytes,
            max_queue,
            retry_cap_ns,
            max_retries: 8,
            seed,
            queue: Vec::new(),
        }
    }

    /// Queued tenant count.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Deterministic retry-after for a tenant's `attempt`-th rejection:
    /// the shared [`Backoff`] schedule (seeded by service seed × tenant id)
    /// clamped to the hard cap.
    pub fn retry_after_ns(&self, id: TenantId, attempt: u32) -> f64 {
        let mut b = Backoff::new(self.max_retries, self.seed ^ (id.0 as u64).rotate_left(17))
            .with_cap_ns(self.retry_cap_ns);
        for _ in 0..attempt.max(1) {
            b.retry();
        }
        b.delay_ns()
    }

    /// Offer tenant `id` (already registered in `tenants`) to the queue.
    /// A full queue sheds strictly by priority: the offer displaces the
    /// lowest-priority queued tenant only if it outranks it; otherwise the
    /// offer itself is refused with a retry-after.
    pub fn offer(&mut self, tenants: &mut [Tenant], id: TenantId) -> SubmitOutcome {
        let spec = &tenants[id.0 as usize].spec;
        if spec.min_dram_quota > self.total_dram_bytes {
            tenants[id.0 as usize].status = TenantStatus::Shed(ShedReason::CapacityExceeded);
            return SubmitOutcome::Rejected {
                id,
                reason: ShedReason::CapacityExceeded,
                retry_after_ns: f64::INFINITY,
            };
        }
        if self.queue.len() < self.max_queue {
            self.queue.push(id);
            tenants[id.0 as usize].status = TenantStatus::Queued;
            return SubmitOutcome::Enqueued(id);
        }
        // Full queue: find the weakest queued tenant (lowest priority,
        // most recent submission losing ties). `None` only for a
        // zero-capacity queue, where there is nobody to displace and the
        // offer falls through to the rejection path.
        let victim = self
            .queue
            .iter()
            .copied()
            .min_by_key(|q| (tenants[q.0 as usize].spec.priority, std::cmp::Reverse(q.0)));
        if let Some(victim) = victim {
            let offer_priority = tenants[id.0 as usize].spec.priority;
            if offer_priority > tenants[victim.0 as usize].spec.priority {
                self.queue.retain(|&q| q != victim);
                self.shed(tenants, victim, ShedReason::QueueFull);
                self.queue.push(id);
                tenants[id.0 as usize].status = TenantStatus::Queued;
                return SubmitOutcome::Enqueued(id);
            }
        }
        let t = &mut tenants[id.0 as usize];
        t.retry_responses += 1;
        t.status = TenantStatus::Shed(ShedReason::QueueFull);
        let retry_after_ns = self.retry_after_ns(id, t.retry_responses);
        SubmitOutcome::Rejected {
            id,
            reason: ShedReason::QueueFull,
            retry_after_ns,
        }
    }

    /// Shed queued tenants whose deadline has passed on the virtual clock.
    pub fn shed_expired(&mut self, tenants: &mut [Tenant], now_ns: f64) -> Vec<TenantId> {
        let expired: Vec<TenantId> = self
            .queue
            .iter()
            .copied()
            .filter(|q| now_ns >= tenants[q.0 as usize].spec.deadline_ns)
            .collect();
        for &id in &expired {
            self.queue.retain(|&q| q != id);
            self.shed(tenants, id, ShedReason::DeadlineExpired);
        }
        expired
    }

    /// One admission pass: walk the queue strictly by (priority desc,
    /// submission order asc) and grant from `free_dram`. A tenant that
    /// fits gets its full quota; under overload it is squeezed down to —
    /// but never below — its declared floor. Tenants that do not fit stay
    /// queued (they may fit after a completion releases its grant).
    pub fn admit_pass(&mut self, tenants: &mut [Tenant], mut free_dram: u64) -> Vec<Admission> {
        let mut order = self.queue.clone();
        order.sort_by_key(|q| (std::cmp::Reverse(tenants[q.0 as usize].spec.priority), q.0));
        let mut granted = Vec::new();
        for id in order {
            let spec = &tenants[id.0 as usize].spec;
            if spec.min_dram_quota > free_dram {
                continue;
            }
            let grant = spec.dram_quota.min(free_dram);
            free_dram -= grant;
            self.queue.retain(|&q| q != id);
            granted.push(Admission { id, granted: grant });
        }
        granted
    }

    fn shed(&self, tenants: &mut [Tenant], id: TenantId, reason: ShedReason) {
        let t = &mut tenants[id.0 as usize];
        t.status = TenantStatus::Shed(reason);
        t.retry_responses += 1;
    }
}
