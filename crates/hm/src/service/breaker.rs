//! Per-tenant circuit breaker: the Closed → Open → Half-Open transition
//! logic over the persistent [`BreakerFrame`] (DESIGN.md §17).
//!
//! The *frame* (plain data, checkpoint v6) lives in
//! [`crate::checkpoint::BreakerFrame`] so an Open tenant's breaker state
//! survives crash/resume bit-identically; this module adds the tuning
//! knobs and the transition functions the service's supervisor calls.
//!
//! **Determinism contract.** Strikes and strike windows are denominated in
//! the tenant's *own* attempt counter — a pure function of its entry
//! stream, so a runner task can mirror the transitions remotely and the
//! serial and concurrent control loops trip at the identical entry at any
//! `--jobs`. Only `open_until` (when a Half-Open probe may start) is
//! denominated in the service-wide consumed-entry step counter, which both
//! loops advance identically (one step per consumed entry).

use crate::checkpoint::BreakerFrame;

/// Tuning knobs of the per-tenant circuit breaker.
///
/// The defaults leave behavior unchanged for non-faulting tenants: stall
/// detection is off (`stall_threshold_ns` infinite), and panic strikes
/// only arise when a tenant's round actually panics — previously a
/// service-wide teardown, now a contained strike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Strikes within one window that trip the breaker Closed → Open.
    pub strikes_to_trip: u32,
    /// Width of the strike window, in the tenant's own round attempts.
    /// A strike landing `>= strike_window` attempts after the window
    /// opened starts a fresh window instead of accumulating.
    pub strike_window: u64,
    /// Service steps the breaker stays Open before a Half-Open probe may
    /// start (clamped to ≥ 1).
    pub open_steps: u64,
    /// Probe rounds a Half-Open tenant must complete cleanly before the
    /// breaker re-closes (clamped to ≥ 1).
    pub probe_rounds: u32,
    /// Trips after which the tenant is quarantined instead of re-opened
    /// (a repeatedly-failing tenant eventually stops consuming probes).
    pub max_trips: u32,
    /// A round slower than this is a *stall* strike, ns. Infinite (the
    /// default) disables stall detection.
    pub stall_threshold_ns: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            strikes_to_trip: 3,
            strike_window: 8,
            open_steps: 4,
            probe_rounds: 2,
            max_trips: 2,
            stall_threshold_ns: f64::INFINITY,
        }
    }
}

/// Observable state of a breaker frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: rounds run normally, strikes accumulate toward a trip.
    Closed,
    /// Tripped: the tenant is suspended (not runnable), its grant released,
    /// until the service step reaches `open_until`.
    Open,
    /// Probing: the tenant runs restored-from-checkpoint probe rounds;
    /// one strike re-trips immediately, `probe_rounds` clean rounds
    /// re-close.
    HalfOpen,
}

impl BreakerFrame {
    /// Derive the breaker state from the frame.
    pub fn state(&self) -> BreakerState {
        if self.probes_left > 0 {
            BreakerState::HalfOpen
        } else if self.open_until > 0 {
            BreakerState::Open
        } else {
            BreakerState::Closed
        }
    }

    /// Is the tenant suspended awaiting its Half-Open probe?
    pub fn is_open(&self) -> bool {
        self.state() == BreakerState::Open
    }

    /// Record one clean round attempt. During Half-Open this consumes a
    /// probe round; completing the last probe re-closes the breaker and
    /// opens a fresh strike window.
    pub fn on_success(&mut self) {
        self.attempts += 1;
        if self.probes_left > 0 {
            self.probes_left -= 1;
            if self.probes_left == 0 {
                self.open_until = 0;
                self.strikes = 0;
                self.window_start = self.attempts;
            }
        }
    }

    /// Record one struck round attempt (panic or stall). Returns `true`
    /// when the breaker trips: `strikes_to_trip` strikes inside one window
    /// while Closed, or any strike at all while Half-Open (a failed probe
    /// re-trips immediately). The caller decides between
    /// [`open`](Self::open) and quarantine by comparing
    /// [`trips`](Self::trips) against [`BreakerConfig::max_trips`].
    pub fn on_strike(&mut self, cfg: &BreakerConfig) -> bool {
        self.attempts += 1;
        if self.probes_left > 0 {
            self.probes_left = 0;
            self.strikes = 0;
            self.window_start = self.attempts;
            self.trips += 1;
            return true;
        }
        if self.strikes > 0 && self.attempts - self.window_start >= cfg.strike_window {
            self.strikes = 0;
        }
        if self.strikes == 0 {
            self.window_start = self.attempts;
        }
        self.strikes += 1;
        if self.strikes >= cfg.strikes_to_trip.max(1) {
            self.strikes = 0;
            self.trips += 1;
            true
        } else {
            false
        }
    }

    /// Trip Closed/Half-Open → Open: suspend until service step
    /// `now_step + open_steps`.
    pub fn open(&mut self, now_step: u64, cfg: &BreakerConfig) {
        self.probes_left = 0;
        self.open_until = now_step + cfg.open_steps.max(1);
    }

    /// May a Half-Open probe start at service step `step`?
    pub fn probe_ready(&self, step: u64) -> bool {
        self.is_open() && step >= self.open_until
    }

    /// Begin the Half-Open probe: `probe_rounds` clean rounds re-close the
    /// breaker, one strike re-trips.
    pub fn begin_probe(&mut self, cfg: &BreakerConfig) {
        self.open_until = 0;
        self.probes_left = cfg.probe_rounds.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_k_strikes_in_window() {
        let cfg = BreakerConfig::default();
        let mut f = BreakerFrame::default();
        assert_eq!(f.state(), BreakerState::Closed);
        assert!(!f.on_strike(&cfg));
        assert!(!f.on_strike(&cfg));
        assert!(f.on_strike(&cfg), "third strike in one window trips");
        assert_eq!(f.trips, 1);
        f.open(10, &cfg);
        assert_eq!(f.state(), BreakerState::Open);
        assert!(!f.probe_ready(10 + cfg.open_steps - 1));
        assert!(f.probe_ready(10 + cfg.open_steps));
    }

    #[test]
    fn window_expiry_resets_strikes() {
        let cfg = BreakerConfig {
            strike_window: 4,
            ..BreakerConfig::default()
        };
        let mut f = BreakerFrame::default();
        assert!(!f.on_strike(&cfg));
        for _ in 0..4 {
            f.on_success();
        }
        // The window has lapsed: this strike opens a fresh window.
        assert!(!f.on_strike(&cfg));
        assert_eq!(f.strikes, 1);
        assert!(!f.on_strike(&cfg));
        assert!(f.on_strike(&cfg));
    }

    #[test]
    fn half_open_probe_recloses_or_retrips() {
        let cfg = BreakerConfig::default();
        let mut f = BreakerFrame::default();
        for _ in 0..3 {
            f.on_strike(&cfg);
        }
        f.open(0, &cfg);
        f.begin_probe(&cfg);
        assert_eq!(f.state(), BreakerState::HalfOpen);
        // Clean probes re-close and open a fresh window.
        for _ in 0..cfg.probe_rounds {
            f.on_success();
        }
        assert_eq!(f.state(), BreakerState::Closed);
        assert_eq!(f.strikes, 0);
        // A struck probe re-trips in one strike.
        for _ in 0..3 {
            f.on_strike(&cfg);
        }
        f.open(0, &cfg);
        f.begin_probe(&cfg);
        assert!(f.on_strike(&cfg), "half-open strike trips immediately");
        assert_eq!(f.trips, 3);
    }
}
