//! Placement-as-a-service: a multi-tenant runtime over one two-tier pool.
//!
//! ROADMAP item 1: instead of one `repro` job owning the whole emulated
//! machine, many *tenants* — each a workload + policy pair with a declared
//! DRAM quota, weight, priority, and deadline — share the pool, and the
//! robustness machinery of PRs 1/2/5 (degradation ladder, watchdog, drift
//! sentinel, checkpoint blobs) becomes **per-tenant SLO enforcement**
//! rather than global state.
//!
//! Architecture (one submodule each):
//!
//! * [`tenant`] — identity, declared contract, lifecycle state machine;
//! * [`admission`] — bounded submission queue, priority-ordered grants
//!   with overload squeezing down to a declared floor, deadline shedding,
//!   [`Backoff`](crate::backoff::Backoff)-driven retry-after responses;
//! * [`scheduler`] — deficit round robin over tenant weight, interleaving
//!   whole rounds (the natural preemption point of the round-barrier
//!   execution model);
//! * [`report`] — [`TenantReport`]/[`ServiceReport`] SLO accounting
//!   (deadline misses, degraded rounds, Jain fairness index).
//!
//! **Isolation model.** Every tenant owns its own
//! [`HmSystem`](crate::system::HmSystem): the shared
//! pool is partitioned by *grants* — the admission controller never lets
//! outstanding grants exceed the pool, and each grant becomes a hard
//! [`dram_quota`](crate::system::HmSystem::set_dram_quota) on the tenant's
//! system, enforced at allocation, migration, and round-boundary eviction
//! time. Because no placement state is shared, a tenant's per-round output
//! is a pure function of (workload, policy, seed, grant): a non-faulted
//! tenant's rounds are **bitwise identical** to a solo run with the same
//! grant, no matter what crashes, sentinel trips, or epoch rollbacks its
//! co-tenants suffer. A faulted tenant is quarantined — its grant returns
//! to the pool and nothing else changes.

pub mod admission;
pub mod report;
pub mod scheduler;
pub mod tenant;

pub use admission::{Admission, AdmissionController, SubmitOutcome};
pub use report::{jain_index, ServiceReport, TenantReport};
pub use scheduler::DrrScheduler;
pub use tenant::{ShedReason, Tenant, TenantId, TenantSpec, TenantStatus};

use crate::runtime::{Executor, PlacementPolicy, RoundReport, RunReport};
use crate::system::HmError;
use crate::workload::Workload;
use crate::Tier;

/// Object-safe view of one tenant's executor, so the service can drive
/// heterogeneous (workload, policy) pairs through one registry. Blanket-
/// implemented for every [`Executor`].
pub trait TenantJob {
    /// Execute one round. `Ok(None)` when every round has already run;
    /// `Err` quarantines the tenant (scripted crash, unrecoverable fault).
    fn step(&mut self) -> Result<Option<RoundReport>, HmError>;
    /// Rounds the workload declares in total.
    fn rounds_total(&self) -> usize;
    /// Rounds completed so far.
    fn rounds_done(&self) -> usize;
    /// Current DRAM residency, bytes (the quota-invariant probe).
    fn dram_resident_bytes(&self) -> u64;
    /// Impose or lift the service grant on the tenant's system.
    fn set_dram_quota(&mut self, quota: Option<u64>);
    /// Full run report over the rounds completed so far.
    fn run_report(&self) -> RunReport;
}

impl<W: Workload, P: PlacementPolicy + Sync> TenantJob for Executor<W, P> {
    fn step(&mut self) -> Result<Option<RoundReport>, HmError> {
        Executor::step(self).map(|r| r.cloned())
    }
    fn rounds_total(&self) -> usize {
        self.workload.num_instances()
    }
    fn rounds_done(&self) -> usize {
        self.next_round()
    }
    fn dram_resident_bytes(&self) -> u64 {
        self.sys.page_table().bytes_in(Tier::Dram)
    }
    fn set_dram_quota(&mut self, quota: Option<u64>) {
        self.sys.set_dram_quota(quota);
    }
    fn run_report(&self) -> RunReport {
        self.report()
    }
}

/// Service configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Shared DRAM pool the admission controller partitions, bytes.
    pub total_dram_bytes: u64,
    /// Submission-queue bound.
    pub max_queue: usize,
    /// DRR credit per weight unit per top-up cycle, ns.
    pub quantum_ns: f64,
    /// Hard cap on retry-after responses, ns.
    pub retry_cap_ns: u64,
    /// Seed for the deterministic retry-after jitter.
    pub seed: u64,
}

impl ServiceConfig {
    /// Defaults over a pool of `total_dram_bytes`: queue bound 32, 1 ms
    /// DRR quantum, 10 s retry-after cap, seed 0.
    pub fn new(total_dram_bytes: u64) -> Self {
        Self {
            total_dram_bytes,
            max_queue: 32,
            quantum_ns: 1_000_000.0,
            retry_cap_ns: 10_000_000_000,
            seed: 0,
        }
    }

    /// Set the submission-queue bound.
    pub fn with_max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue;
        self
    }

    /// Set the DRR quantum.
    pub fn with_quantum_ns(mut self, quantum_ns: f64) -> Self {
        self.quantum_ns = quantum_ns;
        self
    }

    /// Set the retry-after seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The multi-tenant placement service: registry + admission + scheduler +
/// SLO accounting over one shared pool.
pub struct PlacementService {
    config: ServiceConfig,
    tenants: Vec<Tenant>,
    admission: AdmissionController,
    scheduler: DrrScheduler,
    /// Virtual clock: total round time served so far, ns.
    clock_ns: f64,
    /// Sum of grants held by currently running tenants.
    outstanding_grants: u64,
}

impl PlacementService {
    /// An empty service over `config`'s pool.
    pub fn new(config: ServiceConfig) -> Self {
        let admission = AdmissionController::new(
            config.total_dram_bytes,
            config.max_queue,
            config.retry_cap_ns,
            config.seed,
        );
        let scheduler = DrrScheduler::new(config.quantum_ns);
        Self {
            config,
            tenants: Vec::new(),
            admission,
            scheduler,
            clock_ns: 0.0,
            outstanding_grants: 0,
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Current virtual time, ns.
    pub fn clock_ns(&self) -> f64 {
        self.clock_ns
    }

    /// Every submitted tenant, in submission order (including rejected and
    /// shed ones).
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// The run report of one tenant's executor (per-round placement
    /// output; the bitwise isolation oracle compares these against solo
    /// baselines).
    pub fn tenant_run_report(&self, id: TenantId) -> RunReport {
        self.tenants[id.0 as usize].job.run_report()
    }

    /// Submit a tenant. The spec is validated, the tenant registered (even
    /// a rejected submission keeps its registry record for the final
    /// report), and the admission controller decides queue entry. Grants
    /// happen later, inside [`run`](Self::run) passes, strictly by
    /// priority.
    pub fn submit(
        &mut self,
        spec: TenantSpec,
        job: Box<dyn TenantJob>,
    ) -> Result<SubmitOutcome, HmError> {
        spec.validate().map_err(HmError::InvalidConfig)?;
        let id = TenantId(self.tenants.len() as u32);
        self.tenants.push(Tenant {
            id,
            spec,
            status: TenantStatus::Queued,
            granted_quota: None,
            submitted_at_ns: self.clock_ns,
            admitted_at_ns: None,
            finished_at_ns: None,
            deficit_ns: 0.0,
            service_ns: 0.0,
            rounds_done: 0,
            quota_violations: 0,
            retry_responses: 0,
            job,
        });
        Ok(self.admission.offer(&mut self.tenants, id))
    }

    /// Drive every queued and running tenant to completion (or quarantine,
    /// or shed) and return the final rollup. Deterministic: the interleaving
    /// is a pure function of the submitted specs and each tenant's own
    /// round times.
    pub fn run(&mut self) -> ServiceReport {
        loop {
            self.admission
                .shed_expired(&mut self.tenants, self.clock_ns);
            self.admit_ready();
            let Some(id) = self.scheduler.pick(&mut self.tenants) else {
                if self.admission.queue_len() == 0 {
                    break;
                }
                // Nothing running but tenants remain queued: the next
                // admission pass over the fully free pool must admit the
                // highest-priority one (its floor fits the pool — checked
                // at submission).
                continue;
            };
            self.step_tenant(id);
        }
        self.report()
    }

    /// Current rollup (callable mid-run from tests).
    pub fn report(&self) -> ServiceReport {
        ServiceReport::from_tenants(&self.tenants, self.clock_ns)
    }

    /// One admission pass over the free pool.
    fn admit_ready(&mut self) {
        let free = self
            .config
            .total_dram_bytes
            .saturating_sub(self.outstanding_grants);
        for adm in self.admission.admit_pass(&mut self.tenants, free) {
            let t = &mut self.tenants[adm.id.0 as usize];
            t.status = TenantStatus::Running;
            t.granted_quota = Some(adm.granted);
            t.admitted_at_ns = Some(self.clock_ns);
            t.deficit_ns = 0.0;
            t.job.set_dram_quota(Some(adm.granted));
            self.outstanding_grants += adm.granted;
        }
    }

    /// Run one round of tenant `id`, charge its deficit, probe the quota
    /// invariant, and retire it on completion or fault.
    fn step_tenant(&mut self, id: TenantId) {
        let t = &mut self.tenants[id.0 as usize];
        match t.job.step() {
            Ok(Some(round)) => {
                let dt = round.round_time_ns;
                t.rounds_done += 1;
                if let Some(granted) = t.granted_quota {
                    if t.job.dram_resident_bytes() > granted {
                        t.quota_violations += 1;
                    }
                }
                let done = t.job.rounds_done() >= t.job.rounds_total();
                self.clock_ns += dt;
                self.scheduler.charge(&mut self.tenants, id, dt);
                if done {
                    self.retire(id, TenantStatus::Completed);
                }
            }
            Ok(None) => self.retire(id, TenantStatus::Completed),
            Err(HmError::Crashed { round }) => {
                self.retire(id, TenantStatus::Quarantined { round });
            }
            Err(_) => {
                let round = self.tenants[id.0 as usize].rounds_done;
                self.retire(id, TenantStatus::Quarantined { round });
            }
        }
    }

    /// Retire a running tenant: record the final state, stamp the virtual
    /// clock, and release its grant back to the pool (the next admission
    /// pass may now admit queued tenants).
    fn retire(&mut self, id: TenantId, status: TenantStatus) {
        let t = &mut self.tenants[id.0 as usize];
        t.status = status;
        t.finished_at_ns = Some(self.clock_ns);
        if let Some(g) = t.granted_quota {
            self.outstanding_grants = self.outstanding_grants.saturating_sub(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::StaticPolicy;
    use crate::workload::testutil::SkewedWorkload;
    use crate::{HmConfig, HmSystem, PAGE_SIZE};

    fn job(tasks: usize, rounds: usize, seed: u64) -> Box<dyn TenantJob> {
        let app = SkewedWorkload {
            tasks,
            rounds,
            base_accesses: 1e5,
            obj_bytes: 8 * PAGE_SIZE,
        };
        let sys = HmSystem::new(HmConfig::calibrated(64 * PAGE_SIZE, 1024 * PAGE_SIZE), seed);
        Box::new(Executor::new(sys, app, StaticPolicy { tier: Tier::Pm }))
    }

    fn spec(name: &str, quota_pages: u64) -> TenantSpec {
        TenantSpec::new(name, quota_pages * PAGE_SIZE)
    }

    #[test]
    fn two_tenants_complete_and_share() {
        let mut svc = PlacementService::new(ServiceConfig::new(64 * PAGE_SIZE).with_seed(7));
        svc.submit(spec("a", 16), job(2, 3, 1)).unwrap();
        svc.submit(spec("b", 16), job(2, 3, 2)).unwrap();
        let rep = svc.run();
        assert_eq!(rep.completed, 2);
        assert_eq!(rep.quota_violations, 0);
        assert!(rep.clock_ns > 0.0);
        assert!(rep.fairness_jain > 0.5, "jain {}", rep.fairness_jain);
        for t in &rep.tenants {
            assert_eq!(t.status, TenantStatus::Completed);
            assert_eq!(t.rounds_done, 3);
        }
    }

    #[test]
    fn overload_squeezes_lowest_priority() {
        let mut svc = PlacementService::new(ServiceConfig::new(24 * PAGE_SIZE).with_seed(7));
        svc.submit(
            spec("hi", 16)
                .with_priority(9)
                .with_min_quota(8 * PAGE_SIZE),
            job(2, 2, 1),
        )
        .unwrap();
        svc.submit(
            spec("lo", 16)
                .with_priority(1)
                .with_min_quota(4 * PAGE_SIZE),
            job(2, 2, 2),
        )
        .unwrap();
        let rep = svc.run();
        let hi = &rep.tenants[0];
        let lo = &rep.tenants[1];
        assert_eq!(hi.granted_quota, 16 * PAGE_SIZE);
        assert!(!hi.squeezed);
        // The low-priority tenant is squeezed into what remains.
        assert_eq!(lo.granted_quota, 8 * PAGE_SIZE);
        assert!(lo.squeezed);
        assert_eq!(rep.quota_violations, 0);
    }

    #[test]
    fn full_queue_sheds_by_priority_with_retry_after() {
        let cfg = ServiceConfig::new(64 * PAGE_SIZE)
            .with_max_queue(1)
            .with_seed(3);
        let mut svc = PlacementService::new(cfg);
        svc.submit(spec("first", 8).with_priority(5), job(1, 1, 1))
            .unwrap();
        // Lower priority than the queued tenant: rejected with finite
        // retry-after.
        let out = svc
            .submit(spec("weak", 8).with_priority(1), job(1, 1, 2))
            .unwrap();
        match out {
            SubmitOutcome::Rejected {
                reason,
                retry_after_ns,
                ..
            } => {
                assert_eq!(reason, ShedReason::QueueFull);
                assert!(retry_after_ns.is_finite() && retry_after_ns > 0.0);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // Higher priority: displaces the queued tenant.
        let out = svc
            .submit(spec("strong", 8).with_priority(9), job(1, 1, 3))
            .unwrap();
        assert!(matches!(out, SubmitOutcome::Enqueued(_)));
        let rep = svc.run();
        assert_eq!(
            rep.tenants[0].status,
            TenantStatus::Shed(ShedReason::QueueFull)
        );
        assert_eq!(rep.tenants[2].status, TenantStatus::Completed);
    }

    #[test]
    fn impossible_floor_rejected_without_retry() {
        let mut svc = PlacementService::new(ServiceConfig::new(8 * PAGE_SIZE));
        let out = svc
            .submit(
                spec("huge", 64).with_min_quota(64 * PAGE_SIZE),
                job(1, 1, 1),
            )
            .unwrap();
        match out {
            SubmitOutcome::Rejected {
                reason,
                retry_after_ns,
                ..
            } => {
                assert_eq!(reason, ShedReason::CapacityExceeded);
                assert!(retry_after_ns.is_infinite());
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn queued_tenant_past_deadline_is_shed() {
        let mut svc = PlacementService::new(ServiceConfig::new(16 * PAGE_SIZE).with_seed(5));
        // Hog takes the whole pool; impatient can't fit and expires while
        // waiting.
        svc.submit(spec("hog", 16), job(2, 4, 1)).unwrap();
        svc.submit(spec("impatient", 16).with_deadline_ns(1.0), job(2, 2, 2))
            .unwrap();
        let rep = svc.run();
        assert_eq!(rep.tenants[0].status, TenantStatus::Completed);
        assert_eq!(
            rep.tenants[1].status,
            TenantStatus::Shed(ShedReason::DeadlineExpired)
        );
        assert!(rep.tenants[1].deadline_missed);
    }

    #[test]
    fn crash_quarantines_only_the_faulted_tenant() {
        use crate::fault::{CrashPoint, FaultKind, FaultPlan};
        let mut svc = PlacementService::new(ServiceConfig::new(64 * PAGE_SIZE).with_seed(11));
        let app = SkewedWorkload {
            tasks: 2,
            rounds: 4,
            base_accesses: 1e5,
            obj_bytes: 8 * PAGE_SIZE,
        };
        let mut sys = HmSystem::new(HmConfig::calibrated(64 * PAGE_SIZE, 1024 * PAGE_SIZE), 9);
        sys.set_fault_plan(FaultPlan::none().with_fault(FaultKind::Crash {
            round: 1,
            point: CrashPoint::BetweenRounds,
        }))
        .unwrap();
        let chaotic = Executor::new(sys, app, StaticPolicy { tier: Tier::Pm });
        svc.submit(spec("chaotic", 16), Box::new(chaotic)).unwrap();
        svc.submit(spec("steady", 16), job(2, 3, 2)).unwrap();
        let rep = svc.run();
        assert!(matches!(
            rep.tenants[0].status,
            TenantStatus::Quarantined { .. }
        ));
        assert_eq!(rep.tenants[1].status, TenantStatus::Completed);
        assert_eq!(rep.tenants[1].rounds_done, 3);
        assert_eq!(rep.quarantined, 1);
    }

    #[test]
    fn drr_share_tracks_weight() {
        let mut svc = PlacementService::new(ServiceConfig::new(64 * PAGE_SIZE).with_seed(13));
        svc.submit(spec("w1", 16).with_weight(1), job(2, 12, 1))
            .unwrap();
        svc.submit(spec("w3", 16).with_weight(3), job(2, 12, 2))
            .unwrap();
        let rep = svc.run();
        // Identical workloads, so equal total service; fairness of the
        // *rate* shows up in the interleaving order instead. Both finish.
        assert_eq!(rep.completed, 2);
        // Weight-3 tenant must never fall behind the weight-1 tenant by
        // more than a cycle's lag at completion time.
        assert!(rep.tenants[1].finished_at_ns <= rep.tenants[0].finished_at_ns);
    }
}
