//! Placement-as-a-service: a multi-tenant runtime over one two-tier pool.
//!
//! ROADMAP item 1: instead of one `repro` job owning the whole emulated
//! machine, many *tenants* — each a workload + policy pair with a declared
//! DRAM quota, weight, priority, and deadline — share the pool, and the
//! robustness machinery of PRs 1/2/5 (degradation ladder, watchdog, drift
//! sentinel, checkpoint blobs) becomes **per-tenant SLO enforcement**
//! rather than global state.
//!
//! Architecture (one submodule each):
//!
//! * [`tenant`] — identity, declared contract, lifecycle state machine;
//! * [`admission`] — bounded submission queue, priority-ordered grants
//!   with overload squeezing down to a declared floor, deadline shedding,
//!   [`Backoff`](crate::backoff::Backoff)-driven retry-after responses;
//! * [`scheduler`] — deficit round robin over tenant weight, interleaving
//!   whole rounds (the natural preemption point of the round-barrier
//!   execution model);
//! * [`report`] — [`TenantReport`]/[`ServiceReport`] SLO accounting
//!   (deadline misses, degraded rounds, Jain fairness index).
//!
//! **Isolation model.** Every tenant owns its own
//! [`HmSystem`](crate::system::HmSystem): the shared
//! pool is partitioned by *grants* — the admission controller never lets
//! outstanding grants exceed the pool, and each grant becomes a hard
//! [`dram_quota`](crate::system::HmSystem::set_dram_quota) on the tenant's
//! system, enforced at allocation, migration, and round-boundary eviction
//! time. Because no placement state is shared, a tenant's per-round output
//! is a pure function of (workload, policy, seed, grant): a non-faulted
//! tenant's rounds are **bitwise identical** to a solo run with the same
//! grant, no matter what crashes, sentinel trips, or epoch rollbacks its
//! co-tenants suffer. A faulted tenant is quarantined — its grant returns
//! to the pool and nothing else changes.
//!
//! **Concurrent rounds.** When the unified scheduler is configured with
//! more than one job ([`merch_sched::set_pool_jobs`]), [`PlacementService::run`]
//! executes tenant rounds concurrently: each admitted tenant becomes a
//! [`merch_sched::TaskClass::Tenant`] *runner* task that owns the tenant's
//! job outright and streams per-round results into a pipe, while the
//! unchanged serial control loop (shed → admit → DRR pick → charge)
//! consumes the pipes in exactly the order the serial `step()` loop would
//! have produced. Because a tenant's round stream is a pure function of
//! (workload, policy, seed, grant) — the isolation model above — the
//! streamed results are the results the control loop would have computed
//! inline, and the final [`ServiceReport`] is **bitwise identical** at any
//! job count. Runners never touch shared state; the control loop never
//! touches a running tenant's job.
//!
//! **Fault containment** (DESIGN.md §17). A tenant whose round *panics*
//! (a bug, not a modeled fault) or *stalls* (round time beyond a declared
//! threshold) no longer tears the whole service down: each tenant carries
//! a three-state circuit [`breaker`]. Strikes inside a window trip the
//! breaker Closed → Open — the tenant is suspended at its round boundary,
//! its executor state checkpointed (v6, breaker frame embedded), and its
//! grant released back to the pool where the next priority-ordered
//! admission pass redistributes it, exactly like a
//! [capacity renegotiation](PlacementService::offline_dram). After a
//! cool-down the breaker goes Half-Open: the checkpoint is restored
//! *in place* (proving the v6 round-trip bit-identical), the grant
//! re-applied, and probe rounds run — clean probes re-close the breaker,
//! one struck probe re-trips it, and `max_trips` trips quarantine the
//! tenant for good. Survivors are never perturbed: their round streams
//! stay bitwise identical to a no-fault run at any job count.

pub mod admission;
pub mod breaker;
pub mod report;
pub mod scheduler;
pub mod tenant;

pub use admission::{Admission, AdmissionController, SubmitOutcome};
pub use breaker::{BreakerConfig, BreakerState};
pub use report::{jain_index, ServiceReport, TenantReport};
pub use scheduler::DrrScheduler;
pub use tenant::{ShedReason, Tenant, TenantId, TenantSpec, TenantStatus};

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;

use crate::checkpoint::BreakerFrame;
use crate::runtime::{Executor, PlacementPolicy, RoundReport, RunReport};
use crate::system::HmError;
use crate::workload::Workload;
use crate::Tier;

/// Object-safe view of one tenant's executor, so the service can drive
/// heterogeneous (workload, policy) pairs through one registry. Blanket-
/// implemented for every [`Executor`]. `Send` so a concurrent
/// [`PlacementService::run`] can hand the job to a runner task.
pub trait TenantJob: Send {
    /// Execute one round. `Ok(None)` when every round has already run;
    /// `Err` quarantines the tenant (scripted crash, unrecoverable fault).
    fn step(&mut self) -> Result<Option<RoundReport>, HmError>;
    /// Rounds the workload declares in total.
    fn rounds_total(&self) -> usize;
    /// Rounds completed so far.
    fn rounds_done(&self) -> usize;
    /// Current DRAM residency, bytes (the quota-invariant probe).
    fn dram_resident_bytes(&self) -> u64;
    /// Impose or lift the service grant on the tenant's system.
    fn set_dram_quota(&mut self, quota: Option<u64>);
    /// Full run report over the rounds completed so far.
    fn run_report(&self) -> RunReport;
    /// Snapshot the executor at its current round boundary — the
    /// supervisor's breaker frame embedded — as checkpoint payload text
    /// (version [`CHECKPOINT_VERSION`](crate::checkpoint::CHECKPOINT_VERSION)).
    fn checkpoint_text(&self, breaker: &BreakerFrame) -> String;
    /// Restore a snapshot produced by
    /// [`checkpoint_text`](Self::checkpoint_text) back into this executor
    /// (which must sit at the same round boundary) and return the embedded
    /// breaker frame. One-shot scripted faults are disarmed, so a
    /// Half-Open probe does not re-panic at the same point.
    fn restore_text(&mut self, text: &str) -> Result<BreakerFrame, HmError>;
}

impl<W: Workload, P: PlacementPolicy + Sync> TenantJob for Executor<W, P> {
    fn step(&mut self) -> Result<Option<RoundReport>, HmError> {
        Executor::step(self).map(|r| r.cloned())
    }
    fn rounds_total(&self) -> usize {
        self.workload.num_instances()
    }
    fn rounds_done(&self) -> usize {
        self.next_round()
    }
    fn dram_resident_bytes(&self) -> u64 {
        self.sys.page_table().bytes_in(Tier::Dram)
    }
    fn set_dram_quota(&mut self, quota: Option<u64>) {
        self.sys.set_dram_quota(quota);
    }
    fn run_report(&self) -> RunReport {
        self.report()
    }
    fn checkpoint_text(&self, breaker: &BreakerFrame) -> String {
        let mut ck = Executor::checkpoint(self);
        ck.breaker = *breaker;
        ck.encode()
    }
    fn restore_text(&mut self, text: &str) -> Result<BreakerFrame, HmError> {
        let ck = crate::checkpoint::Checkpoint::decode(text)?;
        let frame = ck.breaker;
        Executor::restore_in_place(self, ck)?;
        Ok(frame)
    }
}

/// One round outcome, as observed by the accounting loop: everything
/// [`PlacementService::consume_entry`] reads from a tenant's job after a
/// step, snapshotted so a runner task can compute it remotely.
enum StepEntry {
    /// A round ran: its report, the tenant's post-round DRAM residency
    /// (the quota-invariant probe), and whether it was the final round.
    Round {
        round: RoundReport,
        resident: u64,
        done: bool,
    },
    /// `step()` returned `Ok(None)`: every round had already run.
    Exhausted,
    /// The tenant faulted; it will be quarantined.
    Fault(HmError),
    /// The job panicked (a bug, not a modeled fault): carried to the
    /// control loop so it re-raises where the serial path would have,
    /// instead of deadlocking a pipe that will never fill.
    Panicked(String),
}

/// Execute one round of `job` and snapshot the outcome — the execution
/// half of the old `step_tenant`, shared by the serial path (inline) and
/// the concurrent runners (on worker tasks).
fn step_entry(job: &mut dyn TenantJob) -> StepEntry {
    match job.step() {
        Ok(Some(round)) => {
            let resident = job.dram_resident_bytes();
            let done = job.rounds_done() >= job.rounds_total();
            StepEntry::Round {
                round,
                resident,
                done,
            }
        }
        Ok(None) => StepEntry::Exhausted,
        Err(e) => StepEntry::Fault(e),
    }
}

/// Placeholder occupying a tenant's registry slot while a runner task owns
/// the real job. Never stepped or reported against: the control loop only
/// touches a running tenant's job through its pipe, and the real job is
/// handed back before `run` returns. Every method degrades instead of
/// panicking — a supervisor bug that reaches a parked job quarantines one
/// tenant rather than tearing the service down.
struct ParkedJob;

impl TenantJob for ParkedJob {
    fn step(&mut self) -> Result<Option<RoundReport>, HmError> {
        Err(HmError::InvalidConfig("parked tenant job stepped".into()))
    }
    fn rounds_total(&self) -> usize {
        0
    }
    fn rounds_done(&self) -> usize {
        0
    }
    fn dram_resident_bytes(&self) -> u64 {
        0
    }
    fn set_dram_quota(&mut self, _quota: Option<u64>) {}
    fn run_report(&self) -> RunReport {
        RunReport {
            workload: "parked".into(),
            policy: "parked".into(),
            rounds: Vec::new(),
            timeline_samples: Vec::new(),
            avg_dram_gbps: 0.0,
            avg_pm_gbps: 0.0,
            fault: crate::fault::FaultSummary::default(),
            epoch_commits: 0,
            epoch_rollbacks: 0,
        }
    }
    fn checkpoint_text(&self, _breaker: &BreakerFrame) -> String {
        String::new()
    }
    fn restore_text(&mut self, _text: &str) -> Result<BreakerFrame, HmError> {
        Err(HmError::CheckpointCorrupt(
            "parked tenant job restored".into(),
        ))
    }
}

/// Service configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Shared DRAM pool the admission controller partitions, bytes.
    pub total_dram_bytes: u64,
    /// Submission-queue bound.
    pub max_queue: usize,
    /// DRR credit per weight unit per top-up cycle, ns.
    pub quantum_ns: f64,
    /// Hard cap on retry-after responses, ns.
    pub retry_cap_ns: u64,
    /// Seed for the deterministic retry-after jitter.
    pub seed: u64,
    /// Per-tenant circuit-breaker tuning (defaults: 3 strikes / window 8,
    /// stall detection off).
    pub breaker: BreakerConfig,
    /// When set, an Open tenant's trip checkpoint is also persisted to a
    /// per-tenant WAL file in this directory (`tenant-<id>.wal`), so a
    /// service crash while a breaker is Open can recover the suspended
    /// executor from disk. `None` (the default) keeps the service
    /// filesystem-free.
    pub wal_dir: Option<PathBuf>,
}

impl ServiceConfig {
    /// Defaults over a pool of `total_dram_bytes`: queue bound 32, 1 ms
    /// DRR quantum, 10 s retry-after cap, seed 0.
    pub fn new(total_dram_bytes: u64) -> Self {
        Self {
            total_dram_bytes,
            max_queue: 32,
            quantum_ns: 1_000_000.0,
            retry_cap_ns: 10_000_000_000,
            seed: 0,
            breaker: BreakerConfig::default(),
            wal_dir: None,
        }
    }

    /// Set the circuit-breaker tuning.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Treat rounds slower than `ns` as stall strikes.
    pub fn with_stall_threshold_ns(mut self, ns: f64) -> Self {
        self.breaker.stall_threshold_ns = ns;
        self
    }

    /// Persist trip checkpoints to per-tenant WAL files under `dir`.
    pub fn with_wal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.wal_dir = Some(dir.into());
        self
    }

    /// Set the submission-queue bound.
    pub fn with_max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue;
        self
    }

    /// Set the DRR quantum.
    pub fn with_quantum_ns(mut self, quantum_ns: f64) -> Self {
        self.quantum_ns = quantum_ns;
        self
    }

    /// Set the retry-after seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Outcome of a capacity-loss renegotiation pass
/// ([`PlacementService::offline_dram`]): what happened to every grant that
/// was outstanding when the pool shrank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Renegotiation {
    /// Bytes actually removed from the pool (≤ requested: the pool cannot
    /// go below zero).
    pub offlined_bytes: u64,
    /// Tenants whose full grant still fits — untouched.
    pub kept: Vec<TenantId>,
    /// Tenants squeezed to a smaller grant (new grant, ≥ their floor).
    pub squeezed: Vec<(TenantId, u64)>,
    /// Tenants whose floor no longer fits the remaining pool: displaced
    /// back to the admission queue with the suggested capped-Backoff
    /// retry-after, ns.
    pub displaced: Vec<(TenantId, f64)>,
    /// Displaced tenants that could not even be requeued (their floor
    /// exceeds the shrunk pool, or the queue shed them).
    pub shed: Vec<TenantId>,
}

/// What the supervisor must do after consuming one entry — the
/// job-dependent half of a breaker transition, returned out of
/// [`PlacementService::consume_entry`] because in the concurrent loop the
/// tenant's job must first be reclaimed from its runner before it can be
/// checkpointed or relaunched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ContainAction {
    /// Nothing job-dependent pending.
    Proceed,
    /// A panic strike that did not trip: the tenant stays Running and its
    /// round must be attempted again (the concurrent loop reclaims the job
    /// and relaunches the runner; the serial loop just picks again).
    Relaunch,
    /// The breaker tripped: checkpoint the job, release the grant, and
    /// either suspend (Open) or quarantine (`max_trips` reached).
    Trip,
}

/// The multi-tenant placement service: registry + admission + scheduler +
/// SLO accounting over one shared pool.
pub struct PlacementService {
    config: ServiceConfig,
    tenants: Vec<Tenant>,
    admission: AdmissionController,
    scheduler: DrrScheduler,
    /// Virtual clock: total round time served so far, ns.
    clock_ns: f64,
    /// Sum of grants held by currently running tenants.
    outstanding_grants: u64,
    /// Consumed-entry step counter: advanced once per consumed round
    /// outcome, identically in the serial and concurrent loops. The only
    /// service-wide time base the breaker uses (`open_until`).
    steps: u64,
}

impl PlacementService {
    /// An empty service over `config`'s pool.
    pub fn new(config: ServiceConfig) -> Self {
        let admission = AdmissionController::new(
            config.total_dram_bytes,
            config.max_queue,
            config.retry_cap_ns,
            config.seed,
        );
        let scheduler = DrrScheduler::new(config.quantum_ns);
        Self {
            config,
            tenants: Vec::new(),
            admission,
            scheduler,
            clock_ns: 0.0,
            outstanding_grants: 0,
            steps: 0,
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Current virtual time, ns.
    pub fn clock_ns(&self) -> f64 {
        self.clock_ns
    }

    /// Every submitted tenant, in submission order (including rejected and
    /// shed ones).
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// The run report of one tenant's executor (per-round placement
    /// output; the bitwise isolation oracle compares these against solo
    /// baselines).
    pub fn tenant_run_report(&self, id: TenantId) -> RunReport {
        self.tenants[id.0 as usize].job.run_report()
    }

    /// Submit a tenant. The spec is validated, the tenant registered (even
    /// a rejected submission keeps its registry record for the final
    /// report), and the admission controller decides queue entry. Grants
    /// happen later, inside [`run`](Self::run) passes, strictly by
    /// priority.
    pub fn submit(
        &mut self,
        spec: TenantSpec,
        job: Box<dyn TenantJob>,
    ) -> Result<SubmitOutcome, HmError> {
        spec.validate().map_err(HmError::InvalidConfig)?;
        let id = TenantId(self.tenants.len() as u32);
        self.tenants.push(Tenant {
            id,
            spec,
            status: TenantStatus::Queued,
            granted_quota: None,
            submitted_at_ns: self.clock_ns,
            admitted_at_ns: None,
            finished_at_ns: None,
            deficit_ns: 0.0,
            service_ns: 0.0,
            rounds_done: 0,
            quota_violations: 0,
            retry_responses: 0,
            breaker: BreakerFrame::default(),
            trip_checkpoint: None,
            job,
        });
        Ok(self.admission.offer(&mut self.tenants, id))
    }

    /// Drive every queued and running tenant to completion (or quarantine,
    /// or shed) and return the final rollup. Deterministic: the interleaving
    /// is a pure function of the submitted specs and each tenant's own
    /// round times.
    ///
    /// With [`merch_sched::pool_jobs`] `> 1` the rounds of different
    /// tenants execute concurrently on the unified scheduler pool; the
    /// report is bitwise identical to the sequential run either way (see
    /// the module docs for the argument).
    pub fn run(&mut self) -> ServiceReport {
        if merch_sched::pool_jobs() > 1 {
            self.run_concurrent();
        } else {
            while self.step() {}
        }
        self.report()
    }

    /// One service iteration: shed expired queued tenants, run an admission
    /// pass over the free pool, and execute one round of the scheduler's
    /// pick. Returns `false` once nothing is queued or running — the
    /// round-granular stepping API behind [`run`](Self::run), exposed so
    /// harnesses can inject mid-run events (capacity offlining, probes)
    /// between rounds.
    pub fn step(&mut self) -> bool {
        self.admission
            .shed_expired(&mut self.tenants, self.clock_ns);
        self.tick_breakers();
        self.admit_ready();
        let Some(id) = self.scheduler.pick(&mut self.tenants) else {
            // Nothing runnable. If tenants remain queued, the next admission
            // pass over the fully free pool must admit the highest-priority
            // one (its floor fits the pool — checked at submission).
            if self.admission.queue_len() != 0 {
                return true;
            }
            // Only Open (suspended) tenants remain: fast-forward the step
            // counter to the earliest probe time so their Half-Open probes
            // can start — identically to the concurrent loop.
            if let Some(ff) = self.min_open_until() {
                self.steps = self.steps.max(ff);
                return true;
            }
            return false;
        };
        self.step_tenant(id);
        true
    }

    /// Sum of grants held by currently running tenants. Never exceeds
    /// [`ServiceConfig::total_dram_bytes`], including across
    /// [`offline_dram`](Self::offline_dram) shrinks.
    pub fn outstanding_grants(&self) -> u64 {
        self.outstanding_grants
    }

    /// A permanent mid-run capacity loss: `bytes` of the shared DRAM pool
    /// go away (a failed DIMM, rack-scale page retirement, the host
    /// reclaiming memory). The pool shrinks and every *running* grant is
    /// renegotiated strictly by (priority desc, submission order asc):
    /// higher-priority tenants keep as much of their grant as still fits,
    /// lower-priority ones are squeezed down to — never below — their
    /// declared floor, and tenants whose floor no longer fits are displaced
    /// back to the admission queue with a capped
    /// [`Backoff`](crate::backoff::Backoff) retry-after (re-admitted when a
    /// completion frees capacity; shed outright when their floor exceeds
    /// the shrunk pool). On return `outstanding grants ≤ shrunk pool` —
    /// quotas are never silently violated.
    pub fn offline_dram(&mut self, bytes: u64) -> Renegotiation {
        let lost = bytes.min(self.config.total_dram_bytes);
        self.config.total_dram_bytes -= lost;
        self.admission.total_dram_bytes = self.config.total_dram_bytes;
        let mut out = Renegotiation {
            offlined_bytes: lost,
            ..Renegotiation::default()
        };
        let mut running: Vec<TenantId> = self
            .tenants
            .iter()
            .filter(|t| matches!(t.status, TenantStatus::Running))
            .map(|t| t.id)
            .collect();
        running.sort_by_key(|id| {
            (
                std::cmp::Reverse(self.tenants[id.0 as usize].spec.priority),
                id.0,
            )
        });
        let mut remaining = self.config.total_dram_bytes;
        let mut outstanding = 0u64;
        for id in running {
            let t = &mut self.tenants[id.0 as usize];
            let old = t.granted_quota.unwrap_or(0);
            if t.spec.min_dram_quota <= remaining {
                // Grants were ≥ the floor when issued, so the squeeze
                // below never cuts under it.
                let grant = old.min(remaining);
                remaining -= grant;
                outstanding += grant;
                if grant == old {
                    out.kept.push(id);
                } else {
                    t.granted_quota = Some(grant);
                    t.job.set_dram_quota(Some(grant));
                    out.squeezed.push((id, grant));
                }
            } else {
                // Displaced: the grant is revoked in full. The zero quota
                // stays in force while the tenant waits; re-admission
                // installs the new grant.
                t.granted_quota = None;
                t.job.set_dram_quota(Some(0));
                t.retry_responses += 1;
                let attempt = t.retry_responses;
                let retry_after_ns = self.admission.retry_after_ns(id, attempt);
                match self.admission.offer(&mut self.tenants, id) {
                    SubmitOutcome::Enqueued(_) => out.displaced.push((id, retry_after_ns)),
                    SubmitOutcome::Rejected { .. } => out.shed.push(id),
                }
            }
        }
        self.outstanding_grants = outstanding;
        out
    }

    /// Current rollup (callable mid-run from tests).
    pub fn report(&self) -> ServiceReport {
        ServiceReport::from_tenants(&self.tenants, self.clock_ns)
    }

    /// One admission pass over the free pool.
    fn admit_ready(&mut self) {
        let free = self
            .config
            .total_dram_bytes
            .saturating_sub(self.outstanding_grants);
        for adm in self.admission.admit_pass(&mut self.tenants, free) {
            let t = &mut self.tenants[adm.id.0 as usize];
            t.status = TenantStatus::Running;
            t.granted_quota = Some(adm.granted);
            t.admitted_at_ns = Some(self.clock_ns);
            t.deficit_ns = 0.0;
            t.job.set_dram_quota(Some(adm.granted));
            self.outstanding_grants += adm.granted;
        }
    }

    /// Run one round of tenant `id`, charge its deficit, probe the quota
    /// invariant, and retire it on completion or fault. Panics are caught
    /// at the round boundary — exactly where the concurrent runners catch
    /// them — and fed to the breaker instead of unwinding the service.
    fn step_tenant(&mut self, id: TenantId) {
        let entry = {
            let job = self.tenants[id.0 as usize].job.as_mut();
            match catch_unwind(AssertUnwindSafe(|| step_entry(job))) {
                Ok(entry) => entry,
                Err(p) => StepEntry::Panicked(merch_sched::payload_msg(p.as_ref())),
            }
        };
        if self.consume_entry(id, entry) == ContainAction::Trip {
            self.trip_tenant(id);
        }
        // `Relaunch` needs no work here: the job never left the registry,
        // so the next pick simply attempts the round again.
    }

    /// Apply one round outcome to the service state — the accounting half
    /// of [`step_tenant`](Self::step_tenant), shared verbatim between the
    /// sequential loop (which computes entries inline) and the concurrent
    /// loop (which consumes them from runner pipes), so both paths perform
    /// the identical field updates in the identical order.
    fn consume_entry(&mut self, id: TenantId, entry: StepEntry) -> ContainAction {
        self.steps += 1;
        let bcfg = self.config.breaker;
        match entry {
            StepEntry::Round {
                round,
                resident,
                done,
            } => {
                let t = &mut self.tenants[id.0 as usize];
                let dt = round.round_time_ns;
                t.rounds_done += 1;
                if let Some(granted) = t.granted_quota {
                    if resident > granted {
                        t.quota_violations += 1;
                    }
                }
                self.clock_ns += dt;
                self.scheduler.charge(&mut self.tenants, id, dt);
                if done {
                    // The final round completes the tenant even when it
                    // stalled: there is nothing left to contain.
                    self.retire(id, TenantStatus::Completed);
                    return ContainAction::Proceed;
                }
                let t = &mut self.tenants[id.0 as usize];
                if dt > bcfg.stall_threshold_ns && t.breaker.on_strike(&bcfg) {
                    return ContainAction::Trip;
                }
                if dt <= bcfg.stall_threshold_ns {
                    t.breaker.on_success();
                }
                ContainAction::Proceed
            }
            StepEntry::Exhausted => {
                self.retire(id, TenantStatus::Completed);
                ContainAction::Proceed
            }
            StepEntry::Fault(HmError::Crashed { round }) => {
                self.retire(id, TenantStatus::Quarantined { round });
                ContainAction::Proceed
            }
            StepEntry::Fault(_) => {
                let round = self.tenants[id.0 as usize].rounds_done;
                self.retire(id, TenantStatus::Quarantined { round });
                ContainAction::Proceed
            }
            // A panicked round is a strike, not a service teardown: the
            // pool and the co-tenants keep going; this tenant retries
            // until its breaker trips.
            StepEntry::Panicked(msg) => {
                let t = &mut self.tenants[id.0 as usize];
                let tripped = t.breaker.on_strike(&bcfg);
                crate::telemetry::Warning::TenantPanicContained {
                    tenant: id.0,
                    strikes: t.breaker.strikes,
                    msg,
                }
                .emit();
                if tripped {
                    ContainAction::Trip
                } else {
                    ContainAction::Relaunch
                }
            }
        }
    }

    /// The breaker tripped on tenant `id` (its job is back in the
    /// registry): checkpoint the executor at its round boundary with the
    /// breaker frame embedded, release the grant back to the pool (the
    /// next priority-ordered admission pass redistributes it, exactly like
    /// a capacity renegotiation), and suspend the tenant Open — or
    /// quarantine it outright once `max_trips` is reached.
    fn trip_tenant(&mut self, id: TenantId) {
        let bcfg = self.config.breaker;
        let i = id.0 as usize;
        let quarantine = self.tenants[i].breaker.trips >= bcfg.max_trips;
        if !quarantine {
            let t = &mut self.tenants[i];
            t.breaker.open(self.steps, &bcfg);
            // Snapshot *before* the grant release below, so the
            // checkpointed system still carries the old quota; the probe
            // re-applies its (possibly different) grant after restore.
            let text = t.job.checkpoint_text(&t.breaker);
            if let Some(dir) = self.config.wal_dir.clone() {
                self.persist_trip(id, &text, &dir);
            }
            self.tenants[i].trip_checkpoint = Some(text);
        }
        let t = &mut self.tenants[i];
        if let Some(g) = t.granted_quota.take() {
            self.outstanding_grants = self.outstanding_grants.saturating_sub(g);
        }
        t.job.set_dram_quota(Some(0));
        if quarantine {
            let round = self.tenants[i].rounds_done;
            self.retire(id, TenantStatus::Quarantined { round });
        }
    }

    /// Best-effort durable copy of a trip checkpoint: decode failures or
    /// I/O errors degrade to in-memory-only supervision (the service keeps
    /// running; recovery granularity is what suffers).
    fn persist_trip(&mut self, id: TenantId, text: &str, dir: &std::path::Path) {
        let Ok(ck) = crate::checkpoint::Checkpoint::decode(text) else {
            return;
        };
        let path = dir.join(format!("tenant-{}.wal", id.0));
        if let Ok(mut wal) = crate::checkpoint::Wal::create(path) {
            let _ = wal.append(&ck, None);
        }
    }

    /// Start the Half-Open probe of every Open tenant whose cool-down has
    /// lapsed and whose floor fits the free pool: restore the trip
    /// checkpoint *in place* (the executor sits at the same round boundary
    /// it was suspended at, so the round-trip must be bit-identical),
    /// re-apply a grant after the restore, and mark the probe rounds. A
    /// tenant whose snapshot is missing or corrupt — or whose floor can
    /// never fit the (possibly shrunk) pool again — is quarantined instead
    /// of spinning forever.
    fn tick_breakers(&mut self) {
        for i in 0..self.tenants.len() {
            let id = TenantId(i as u32);
            {
                let t = &self.tenants[i];
                if t.status != TenantStatus::Running || !t.breaker.probe_ready(self.steps) {
                    continue;
                }
            }
            let spec_floor = self.tenants[i].spec.min_dram_quota;
            if spec_floor > self.config.total_dram_bytes {
                // The pool shrank under this tenant's floor while it was
                // suspended; it can never run again.
                let round = self.tenants[i].rounds_done;
                self.retire(id, TenantStatus::Quarantined { round });
                continue;
            }
            let free = self
                .config
                .total_dram_bytes
                .saturating_sub(self.outstanding_grants);
            if spec_floor > free {
                // Wait for a completion to free capacity; running tenants
                // keep making progress meanwhile.
                continue;
            }
            let t = &mut self.tenants[i];
            let grant = t.spec.dram_quota.min(free);
            let restored = t
                .trip_checkpoint
                .take()
                .ok_or_else(|| HmError::CheckpointCorrupt("missing trip checkpoint".into()))
                .and_then(|text| t.job.restore_text(&text));
            match restored {
                Ok(frame) => {
                    // The decoded frame *is* the authoritative breaker
                    // state — the v6 round-trip just proved itself.
                    t.breaker = frame;
                    t.breaker.begin_probe(&self.config.breaker);
                    t.granted_quota = Some(grant);
                    t.job.set_dram_quota(Some(grant));
                    self.outstanding_grants += grant;
                }
                Err(_) => {
                    let round = self.tenants[i].rounds_done;
                    self.retire(id, TenantStatus::Quarantined { round });
                }
            }
        }
    }

    /// Earliest Half-Open probe step among Open tenants, if any.
    fn min_open_until(&self) -> Option<u64> {
        self.tenants
            .iter()
            .filter(|t| t.status == TenantStatus::Running && t.breaker.is_open())
            .map(|t| t.breaker.open_until)
            .min()
    }

    /// The concurrent twin of the `while self.step() {}` loop: identical
    /// shed/admit/pick/charge control flow, but each admitted tenant's job
    /// moves onto a [`merch_sched::TaskClass::Tenant`] runner task that
    /// streams its round outcomes into a per-tenant pipe, so rounds of
    /// different tenants overlap while the control loop consumes the
    /// streams in exact serial order. Runner tasks own their job outright
    /// (the registry holds a parked placeholder meanwhile) and return it
    /// through a hand-back slot once the stream ends, so post-run report
    /// queries see the same executors the serial path would leave behind.
    fn run_concurrent(&mut self) {
        use merch_sched::TaskClass;
        let n = self.tenants.len();
        let pipes: Vec<Mutex<VecDeque<StepEntry>>> =
            (0..n).map(|_| Mutex::new(VecDeque::new())).collect();
        let handback: Vec<Mutex<Option<Box<dyn TenantJob>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let mut launched = vec![false; n];
        let bcfg = self.config.breaker;
        merch_sched::ensure_workers(merch_sched::pool_jobs().saturating_sub(1));
        merch_sched::scope(TaskClass::Tenant, |scope| loop {
            self.admission
                .shed_expired(&mut self.tenants, self.clock_ns);
            self.tick_breakers();
            self.admit_ready();
            for t in self.tenants.iter_mut() {
                let i = t.id.0 as usize;
                if t.runnable() && !launched[i] {
                    launched[i] = true;
                    // The grant is installed on the job (`admit_ready` or a
                    // Half-Open restore), so the runner computes the exact
                    // stream the serial loop would; grants never change
                    // while a runner generation is live.
                    let mut job = std::mem::replace(&mut t.job, Box::new(ParkedJob));
                    let (pipe, slot) = (&pipes[i], &handback[i]);
                    // The runner's mirror of the tenant's breaker frame:
                    // strikes are a pure function of the entry stream, so
                    // the mirror trips at exactly the entry the control
                    // loop will trip on — ending the stream there.
                    let mut mirror = t.breaker;
                    scope.spawn(move || {
                        loop {
                            let entry = match catch_unwind(AssertUnwindSafe(|| {
                                step_entry(job.as_mut())
                            })) {
                                Ok(entry) => entry,
                                Err(p) => StepEntry::Panicked(merch_sched::payload_msg(p.as_ref())),
                            };
                            let last = match &entry {
                                StepEntry::Round {
                                    round, done: false, ..
                                } => {
                                    if round.round_time_ns > bcfg.stall_threshold_ns {
                                        mirror.on_strike(&bcfg)
                                    } else {
                                        mirror.on_success();
                                        false
                                    }
                                }
                                // Completion, fault, and panic all end the
                                // generation (a panicked job is handed back
                                // for a breaker-gated relaunch).
                                _ => true,
                            };
                            pipe.lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push_back(entry);
                            merch_sched::notify();
                            if last {
                                break;
                            }
                        }
                        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(job);
                        merch_sched::notify();
                    });
                }
            }
            let Some(id) = self.scheduler.pick(&mut self.tenants) else {
                if self.admission.queue_len() == 0 {
                    // Only Open (suspended) tenants remain: fast-forward to
                    // the earliest probe step — identically to `step()`.
                    if let Some(ff) = self.min_open_until() {
                        self.steps = self.steps.max(ff);
                        continue;
                    }
                    break;
                }
                // Queued tenants remain; the next admission pass over the
                // fully free pool admits the highest-priority one.
                continue;
            };
            let pipe = &pipes[id.0 as usize];
            let entry = {
                let mut ready = || !pipe.lock().unwrap_or_else(|e| e.into_inner()).is_empty();
                if !ready() {
                    // Blocks condvar-style, executing queued tenant-round
                    // (and deeper) tasks while this tenant's next round is
                    // still in flight.
                    merch_sched::help_until(TaskClass::Tenant, &mut ready);
                }
                match pipe.lock().unwrap_or_else(|e| e.into_inner()).pop_front() {
                    Some(entry) => entry,
                    // A starved stream here is a supervisor bug; contain it
                    // to this tenant (quarantine via the fault path) rather
                    // than unwinding the scope and every live runner.
                    None => StepEntry::Fault(HmError::InvalidConfig(
                        "tenant runner stream underflow".into(),
                    )),
                }
            };
            match self.consume_entry(id, entry) {
                ContainAction::Proceed => {}
                action => {
                    // The runner generation ended with that entry: take the
                    // job back before relaunching or checkpointing it.
                    let i = id.0 as usize;
                    let slot = &handback[i];
                    let mut returned = || slot.lock().unwrap_or_else(|e| e.into_inner()).is_some();
                    if !returned() {
                        merch_sched::help_until(TaskClass::Tenant, &mut returned);
                    }
                    if let Some(job) = slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                        self.tenants[i].job = job;
                    }
                    launched[i] = false;
                    if action == ContainAction::Trip {
                        self.trip_tenant(id);
                    }
                }
            }
        });
        for t in self.tenants.iter_mut() {
            if let Some(job) = handback[t.id.0 as usize]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
            {
                t.job = job;
            }
        }
    }

    /// Retire a running tenant: record the final state, stamp the virtual
    /// clock, and release its grant back to the pool (the next admission
    /// pass may now admit queued tenants).
    fn retire(&mut self, id: TenantId, status: TenantStatus) {
        let t = &mut self.tenants[id.0 as usize];
        t.status = status;
        t.finished_at_ns = Some(self.clock_ns);
        if let Some(g) = t.granted_quota {
            self.outstanding_grants = self.outstanding_grants.saturating_sub(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::StaticPolicy;
    use crate::workload::testutil::SkewedWorkload;
    use crate::{HmConfig, HmSystem, PAGE_SIZE};

    fn job(tasks: usize, rounds: usize, seed: u64) -> Box<dyn TenantJob> {
        let app = SkewedWorkload {
            tasks,
            rounds,
            base_accesses: 1e5,
            obj_bytes: 8 * PAGE_SIZE,
        };
        let sys = HmSystem::new(HmConfig::calibrated(64 * PAGE_SIZE, 1024 * PAGE_SIZE), seed);
        Box::new(Executor::new(sys, app, StaticPolicy { tier: Tier::Pm }))
    }

    fn spec(name: &str, quota_pages: u64) -> TenantSpec {
        TenantSpec::new(name, quota_pages * PAGE_SIZE)
    }

    #[test]
    fn two_tenants_complete_and_share() {
        let mut svc = PlacementService::new(ServiceConfig::new(64 * PAGE_SIZE).with_seed(7));
        svc.submit(spec("a", 16), job(2, 3, 1)).unwrap();
        svc.submit(spec("b", 16), job(2, 3, 2)).unwrap();
        let rep = svc.run();
        assert_eq!(rep.completed, 2);
        assert_eq!(rep.quota_violations, 0);
        assert!(rep.clock_ns > 0.0);
        assert!(rep.fairness_jain > 0.5, "jain {}", rep.fairness_jain);
        for t in &rep.tenants {
            assert_eq!(t.status, TenantStatus::Completed);
            assert_eq!(t.rounds_done, 3);
        }
    }

    #[test]
    fn overload_squeezes_lowest_priority() {
        let mut svc = PlacementService::new(ServiceConfig::new(24 * PAGE_SIZE).with_seed(7));
        svc.submit(
            spec("hi", 16)
                .with_priority(9)
                .with_min_quota(8 * PAGE_SIZE),
            job(2, 2, 1),
        )
        .unwrap();
        svc.submit(
            spec("lo", 16)
                .with_priority(1)
                .with_min_quota(4 * PAGE_SIZE),
            job(2, 2, 2),
        )
        .unwrap();
        let rep = svc.run();
        let hi = &rep.tenants[0];
        let lo = &rep.tenants[1];
        assert_eq!(hi.granted_quota, 16 * PAGE_SIZE);
        assert!(!hi.squeezed);
        // The low-priority tenant is squeezed into what remains.
        assert_eq!(lo.granted_quota, 8 * PAGE_SIZE);
        assert!(lo.squeezed);
        assert_eq!(rep.quota_violations, 0);
    }

    #[test]
    fn full_queue_sheds_by_priority_with_retry_after() {
        let cfg = ServiceConfig::new(64 * PAGE_SIZE)
            .with_max_queue(1)
            .with_seed(3);
        let mut svc = PlacementService::new(cfg);
        svc.submit(spec("first", 8).with_priority(5), job(1, 1, 1))
            .unwrap();
        // Lower priority than the queued tenant: rejected with finite
        // retry-after.
        let out = svc
            .submit(spec("weak", 8).with_priority(1), job(1, 1, 2))
            .unwrap();
        match out {
            SubmitOutcome::Rejected {
                reason,
                retry_after_ns,
                ..
            } => {
                assert_eq!(reason, ShedReason::QueueFull);
                assert!(retry_after_ns.is_finite() && retry_after_ns > 0.0);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // Higher priority: displaces the queued tenant.
        let out = svc
            .submit(spec("strong", 8).with_priority(9), job(1, 1, 3))
            .unwrap();
        assert!(matches!(out, SubmitOutcome::Enqueued(_)));
        let rep = svc.run();
        assert_eq!(
            rep.tenants[0].status,
            TenantStatus::Shed(ShedReason::QueueFull)
        );
        assert_eq!(rep.tenants[2].status, TenantStatus::Completed);
    }

    #[test]
    fn impossible_floor_rejected_without_retry() {
        let mut svc = PlacementService::new(ServiceConfig::new(8 * PAGE_SIZE));
        let out = svc
            .submit(
                spec("huge", 64).with_min_quota(64 * PAGE_SIZE),
                job(1, 1, 1),
            )
            .unwrap();
        match out {
            SubmitOutcome::Rejected {
                reason,
                retry_after_ns,
                ..
            } => {
                assert_eq!(reason, ShedReason::CapacityExceeded);
                assert!(retry_after_ns.is_infinite());
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn queued_tenant_past_deadline_is_shed() {
        let mut svc = PlacementService::new(ServiceConfig::new(16 * PAGE_SIZE).with_seed(5));
        // Hog takes the whole pool; impatient can't fit and expires while
        // waiting.
        svc.submit(spec("hog", 16), job(2, 4, 1)).unwrap();
        svc.submit(spec("impatient", 16).with_deadline_ns(1.0), job(2, 2, 2))
            .unwrap();
        let rep = svc.run();
        assert_eq!(rep.tenants[0].status, TenantStatus::Completed);
        assert_eq!(
            rep.tenants[1].status,
            TenantStatus::Shed(ShedReason::DeadlineExpired)
        );
        assert!(rep.tenants[1].deadline_missed);
    }

    #[test]
    fn crash_quarantines_only_the_faulted_tenant() {
        use crate::fault::{CrashPoint, FaultKind, FaultPlan};
        let mut svc = PlacementService::new(ServiceConfig::new(64 * PAGE_SIZE).with_seed(11));
        let app = SkewedWorkload {
            tasks: 2,
            rounds: 4,
            base_accesses: 1e5,
            obj_bytes: 8 * PAGE_SIZE,
        };
        let mut sys = HmSystem::new(HmConfig::calibrated(64 * PAGE_SIZE, 1024 * PAGE_SIZE), 9);
        sys.set_fault_plan(FaultPlan::none().with_fault(FaultKind::Crash {
            round: 1,
            point: CrashPoint::BetweenRounds,
        }))
        .unwrap();
        let chaotic = Executor::new(sys, app, StaticPolicy { tier: Tier::Pm });
        svc.submit(spec("chaotic", 16), Box::new(chaotic)).unwrap();
        svc.submit(spec("steady", 16), job(2, 3, 2)).unwrap();
        let rep = svc.run();
        assert!(matches!(
            rep.tenants[0].status,
            TenantStatus::Quarantined { .. }
        ));
        assert_eq!(rep.tenants[1].status, TenantStatus::Completed);
        assert_eq!(rep.tenants[1].rounds_done, 3);
        assert_eq!(rep.quarantined, 1);
    }

    #[test]
    fn offline_renegotiates_grants_priority_ordered() {
        // Pool 40 pages: hi (quota 16, floor 8, prio 9) and lo (quota 16,
        // floor 8, prio 1) both run with full grants. Offlining 16 pages
        // shrinks the pool to 24: hi keeps its 16, lo is squeezed to the
        // remaining 8 — exactly its floor, honored.
        let mut svc = PlacementService::new(ServiceConfig::new(40 * PAGE_SIZE).with_seed(7));
        svc.submit(
            spec("hi", 16)
                .with_priority(9)
                .with_min_quota(8 * PAGE_SIZE),
            job(2, 4, 1),
        )
        .unwrap();
        svc.submit(
            spec("lo", 16)
                .with_priority(1)
                .with_min_quota(8 * PAGE_SIZE),
            job(2, 4, 2),
        )
        .unwrap();
        assert!(svc.step());
        assert_eq!(svc.outstanding_grants(), 32 * PAGE_SIZE);
        let ren = svc.offline_dram(16 * PAGE_SIZE);
        assert_eq!(ren.offlined_bytes, 16 * PAGE_SIZE);
        assert_eq!(ren.kept, vec![TenantId(0)]);
        assert_eq!(ren.squeezed, vec![(TenantId(1), 8 * PAGE_SIZE)]);
        assert!(ren.displaced.is_empty() && ren.shed.is_empty());
        assert_eq!(svc.outstanding_grants(), 24 * PAGE_SIZE);
        assert!(svc.outstanding_grants() <= svc.config().total_dram_bytes);
        let rep = svc.run();
        assert_eq!(rep.completed, 2);
        assert_eq!(rep.quota_violations, 0);
    }

    #[test]
    fn offline_displaces_with_capped_retry_after_and_sheds_impossible_floors() {
        // Pool 32 pages, both tenants hold 16. Offlining 26 pages leaves 6:
        // hi is squeezed to its floor (4 ≤ 6 → grant 6), lo's floor of 8
        // exceeds the remainder (0) *and* the shrunk pool — shed outright
        // with no retry that could ever help.
        let mut svc = PlacementService::new(ServiceConfig::new(32 * PAGE_SIZE).with_seed(7));
        svc.submit(
            spec("hi", 16)
                .with_priority(9)
                .with_min_quota(4 * PAGE_SIZE),
            job(2, 4, 1),
        )
        .unwrap();
        svc.submit(
            spec("lo", 16)
                .with_priority(1)
                .with_min_quota(8 * PAGE_SIZE),
            job(2, 4, 2),
        )
        .unwrap();
        assert!(svc.step());
        let ren = svc.offline_dram(26 * PAGE_SIZE);
        assert_eq!(ren.squeezed, vec![(TenantId(0), 6 * PAGE_SIZE)]);
        assert_eq!(ren.shed, vec![TenantId(1)]);
        assert!(svc.outstanding_grants() <= svc.config().total_dram_bytes);
        let rep = svc.run();
        assert_eq!(rep.tenants[0].status, TenantStatus::Completed);
        assert_eq!(
            rep.tenants[1].status,
            TenantStatus::Shed(ShedReason::CapacityExceeded)
        );
        assert!(rep.tenants[1].retry_responses >= 1);
        assert_eq!(rep.quota_violations, 0);
    }

    #[test]
    fn displaced_tenant_requeues_and_completes_after_capacity_frees() {
        // Pool 32 pages; lo's floor (12) fits the shrunk pool of 20 but not
        // what remains after hi keeps 16 — displaced back to the queue with
        // a finite capped retry-after, then re-admitted once hi completes.
        let mut svc = PlacementService::new(ServiceConfig::new(32 * PAGE_SIZE).with_seed(7));
        svc.submit(
            spec("hi", 16)
                .with_priority(9)
                .with_min_quota(8 * PAGE_SIZE),
            job(2, 2, 1),
        )
        .unwrap();
        svc.submit(
            spec("lo", 16)
                .with_priority(1)
                .with_min_quota(12 * PAGE_SIZE),
            job(2, 2, 2),
        )
        .unwrap();
        assert!(svc.step());
        let ren = svc.offline_dram(12 * PAGE_SIZE);
        assert_eq!(ren.kept, vec![TenantId(0)]);
        assert_eq!(ren.displaced.len(), 1);
        let (id, retry_after_ns) = ren.displaced[0];
        assert_eq!(id, TenantId(1));
        assert!(retry_after_ns.is_finite() && retry_after_ns > 0.0);
        assert!(retry_after_ns <= svc.config().retry_cap_ns as f64);
        assert_eq!(svc.outstanding_grants(), 16 * PAGE_SIZE);
        let rep = svc.run();
        assert_eq!(rep.completed, 2);
        assert_eq!(rep.quota_violations, 0);
        // The re-admitted grant fits the shrunk pool.
        assert_eq!(rep.tenants[1].granted_quota, 16 * PAGE_SIZE);
    }

    /// Build a tenant job with a fault plan armed.
    fn chaos_job(
        tasks: usize,
        rounds: usize,
        seed: u64,
        plan: crate::fault::FaultPlan,
    ) -> Box<dyn TenantJob> {
        let app = SkewedWorkload {
            tasks,
            rounds,
            base_accesses: 1e5,
            obj_bytes: 8 * PAGE_SIZE,
        };
        let mut sys = HmSystem::new(HmConfig::calibrated(64 * PAGE_SIZE, 1024 * PAGE_SIZE), seed);
        sys.set_fault_plan(plan).unwrap();
        Box::new(Executor::new(sys, app, StaticPolicy { tier: Tier::Pm }))
    }

    #[test]
    fn panicking_tenant_trips_probes_and_completes() {
        use crate::fault::FaultPlan;
        // "victim" panics at round 1 until the breaker trips (3 strikes);
        // the Half-Open probe restores the round-1 checkpoint with the
        // one-shot panic disarmed, so the probe replays cleanly and the
        // tenant runs to completion. "steady" must be untouched.
        let mut svc = PlacementService::new(ServiceConfig::new(64 * PAGE_SIZE).with_seed(11));
        svc.submit(
            spec("victim", 16),
            chaos_job(2, 4, 9, FaultPlan::none().with_tenant_panic(1)),
        )
        .unwrap();
        svc.submit(spec("steady", 16), job(2, 3, 2)).unwrap();
        let rep = svc.run();
        assert_eq!(rep.tenants[0].status, TenantStatus::Completed);
        assert_eq!(rep.tenants[0].rounds_done, 4);
        assert_eq!(rep.tenants[0].breaker_trips, 1);
        assert_eq!(rep.tenants[0].fault.tenant_panics, 3, "one per strike");
        assert_eq!(rep.tenants[1].status, TenantStatus::Completed);
        assert_eq!(rep.tenants[1].breaker_trips, 0);
        assert_eq!(rep.tripped, 1);
        assert_eq!(rep.quarantined, 0);
        assert_eq!(rep.quota_violations, 0);
        // The survivor's rounds are bitwise identical to a solo run.
        let mut solo = PlacementService::new(ServiceConfig::new(64 * PAGE_SIZE).with_seed(11));
        solo.submit(spec("steady", 16), job(2, 3, 2)).unwrap();
        solo.run();
        assert_eq!(
            format!("{:?}", svc.tenant_run_report(TenantId(1)).rounds),
            format!("{:?}", solo.tenant_run_report(TenantId(0)).rounds),
        );
    }

    #[test]
    fn stalling_tenant_is_quarantined_after_max_trips() {
        use crate::fault::FaultPlan;
        // A stall fault is *not* disarmed by the probe restore (a hung
        // dependency stays hung): every probe re-strikes, every re-trip
        // burns one of `max_trips`, and the tenant ends Quarantined while
        // the co-tenant completes untouched.
        let cfg = ServiceConfig::new(64 * PAGE_SIZE)
            .with_seed(11)
            // Clean rounds sit near 4e5 ns; a stalled round (1024×
            // inflation) lands near 4e8 — well past this threshold.
            .with_stall_threshold_ns(1e8);
        let mut svc = PlacementService::new(cfg.clone());
        svc.submit(
            spec("hung", 16),
            chaos_job(2, 6, 9, FaultPlan::none().with_tenant_stall(1, 6)),
        )
        .unwrap();
        svc.submit(spec("steady", 16), job(2, 3, 2)).unwrap();
        let rep = svc.run();
        assert!(
            matches!(rep.tenants[0].status, TenantStatus::Quarantined { .. }),
            "hung tenant must end quarantined, got {:?}",
            rep.tenants[0].status
        );
        assert!(rep.tenants[0].breaker_trips >= cfg.breaker.max_trips);
        assert!(rep.tenants[0].fault.stalled_rounds > 0);
        assert_eq!(rep.tenants[1].status, TenantStatus::Completed);
        assert_eq!(rep.quarantined, 1);
        // The quarantined grant was re-absorbed: nothing outstanding at
        // the end, and the service terminated (we got here).
        assert_eq!(svc.outstanding_grants(), 0);
    }

    #[test]
    fn trip_checkpoint_roundtrips_breaker_frame() {
        use crate::fault::FaultPlan;
        // Drive the serial loop until the victim trips, then decode its
        // trip checkpoint: the embedded v6 frame must equal the live one.
        let mut svc = PlacementService::new(ServiceConfig::new(64 * PAGE_SIZE).with_seed(11));
        svc.submit(
            spec("victim", 16),
            chaos_job(2, 4, 9, FaultPlan::none().with_tenant_panic(1)),
        )
        .unwrap();
        let mut steps = 0;
        while svc.tenants()[0].trip_checkpoint.is_none() && svc.step() {
            steps += 1;
            assert!(steps < 1000, "victim never tripped");
        }
        let text = svc.tenants()[0].trip_checkpoint.clone().unwrap();
        let ck = crate::checkpoint::Checkpoint::decode(&text).unwrap();
        assert_eq!(ck.breaker, svc.tenants()[0].breaker);
        assert!(ck.breaker.is_open());
        assert_eq!(ck.breaker.trips, 1);
        // The suspended tenant holds no grant while Open.
        assert_eq!(svc.tenants()[0].granted_quota, None);
        assert!(!svc.tenants()[0].runnable());
        // And the run still converges.
        let rep = svc.run();
        assert_eq!(rep.completed, 1);
    }

    #[test]
    fn wal_dir_persists_trip_checkpoint() {
        use crate::fault::FaultPlan;
        let dir = std::env::temp_dir().join(format!("merch-contain-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut svc = PlacementService::new(
            ServiceConfig::new(64 * PAGE_SIZE)
                .with_seed(11)
                .with_wal_dir(&dir),
        );
        svc.submit(
            spec("victim", 16),
            chaos_job(2, 4, 9, FaultPlan::none().with_tenant_panic(1)),
        )
        .unwrap();
        let rep = svc.run();
        assert_eq!(rep.completed, 1);
        // The trip checkpoint is durably recoverable from the per-tenant WAL.
        let path = dir.join("tenant-0.wal");
        let recovered = crate::checkpoint::Wal::latest(&path).unwrap().unwrap();
        assert!(recovered.breaker.is_open());
        assert_eq!(recovered.breaker.trips, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_capacity_queue_rejects_without_panicking() {
        let cfg = ServiceConfig::new(64 * PAGE_SIZE).with_max_queue(0);
        let mut svc = PlacementService::new(cfg);
        let out = svc.submit(spec("a", 8), job(1, 1, 1)).unwrap();
        assert!(
            matches!(
                out,
                SubmitOutcome::Rejected {
                    reason: ShedReason::QueueFull,
                    ..
                }
            ),
            "zero-capacity queue must reject, got {out:?}"
        );
    }

    #[test]
    fn drr_share_tracks_weight() {
        let mut svc = PlacementService::new(ServiceConfig::new(64 * PAGE_SIZE).with_seed(13));
        svc.submit(spec("w1", 16).with_weight(1), job(2, 12, 1))
            .unwrap();
        svc.submit(spec("w3", 16).with_weight(3), job(2, 12, 2))
            .unwrap();
        let rep = svc.run();
        // Identical workloads, so equal total service; fairness of the
        // *rate* shows up in the interleaving order instead. Both finish.
        assert_eq!(rep.completed, 2);
        // Weight-3 tenant must never fall behind the weight-1 tenant by
        // more than a cycle's lag at completion time.
        assert!(rep.tenants[1].finished_at_ns <= rep.tenants[0].finished_at_ns);
    }
}
