//! Placement-as-a-service: a multi-tenant runtime over one two-tier pool.
//!
//! ROADMAP item 1: instead of one `repro` job owning the whole emulated
//! machine, many *tenants* — each a workload + policy pair with a declared
//! DRAM quota, weight, priority, and deadline — share the pool, and the
//! robustness machinery of PRs 1/2/5 (degradation ladder, watchdog, drift
//! sentinel, checkpoint blobs) becomes **per-tenant SLO enforcement**
//! rather than global state.
//!
//! Architecture (one submodule each):
//!
//! * [`tenant`] — identity, declared contract, lifecycle state machine;
//! * [`admission`] — bounded submission queue, priority-ordered grants
//!   with overload squeezing down to a declared floor, deadline shedding,
//!   [`Backoff`](crate::backoff::Backoff)-driven retry-after responses;
//! * [`scheduler`] — deficit round robin over tenant weight, interleaving
//!   whole rounds (the natural preemption point of the round-barrier
//!   execution model);
//! * [`report`] — [`TenantReport`]/[`ServiceReport`] SLO accounting
//!   (deadline misses, degraded rounds, Jain fairness index).
//!
//! **Isolation model.** Every tenant owns its own
//! [`HmSystem`](crate::system::HmSystem): the shared
//! pool is partitioned by *grants* — the admission controller never lets
//! outstanding grants exceed the pool, and each grant becomes a hard
//! [`dram_quota`](crate::system::HmSystem::set_dram_quota) on the tenant's
//! system, enforced at allocation, migration, and round-boundary eviction
//! time. Because no placement state is shared, a tenant's per-round output
//! is a pure function of (workload, policy, seed, grant): a non-faulted
//! tenant's rounds are **bitwise identical** to a solo run with the same
//! grant, no matter what crashes, sentinel trips, or epoch rollbacks its
//! co-tenants suffer. A faulted tenant is quarantined — its grant returns
//! to the pool and nothing else changes.
//!
//! **Concurrent rounds.** When the unified scheduler is configured with
//! more than one job ([`merch_sched::set_pool_jobs`]), [`PlacementService::run`]
//! executes tenant rounds concurrently: each admitted tenant becomes a
//! [`merch_sched::TaskClass::Tenant`] *runner* task that owns the tenant's
//! job outright and streams per-round results into a pipe, while the
//! unchanged serial control loop (shed → admit → DRR pick → charge)
//! consumes the pipes in exactly the order the serial `step()` loop would
//! have produced. Because a tenant's round stream is a pure function of
//! (workload, policy, seed, grant) — the isolation model above — the
//! streamed results are the results the control loop would have computed
//! inline, and the final [`ServiceReport`] is **bitwise identical** at any
//! job count. Runners never touch shared state; the control loop never
//! touches a running tenant's job.

pub mod admission;
pub mod report;
pub mod scheduler;
pub mod tenant;

pub use admission::{Admission, AdmissionController, SubmitOutcome};
pub use report::{jain_index, ServiceReport, TenantReport};
pub use scheduler::DrrScheduler;
pub use tenant::{ShedReason, Tenant, TenantId, TenantSpec, TenantStatus};

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use crate::runtime::{Executor, PlacementPolicy, RoundReport, RunReport};
use crate::system::HmError;
use crate::workload::Workload;
use crate::Tier;

/// Object-safe view of one tenant's executor, so the service can drive
/// heterogeneous (workload, policy) pairs through one registry. Blanket-
/// implemented for every [`Executor`]. `Send` so a concurrent
/// [`PlacementService::run`] can hand the job to a runner task.
pub trait TenantJob: Send {
    /// Execute one round. `Ok(None)` when every round has already run;
    /// `Err` quarantines the tenant (scripted crash, unrecoverable fault).
    fn step(&mut self) -> Result<Option<RoundReport>, HmError>;
    /// Rounds the workload declares in total.
    fn rounds_total(&self) -> usize;
    /// Rounds completed so far.
    fn rounds_done(&self) -> usize;
    /// Current DRAM residency, bytes (the quota-invariant probe).
    fn dram_resident_bytes(&self) -> u64;
    /// Impose or lift the service grant on the tenant's system.
    fn set_dram_quota(&mut self, quota: Option<u64>);
    /// Full run report over the rounds completed so far.
    fn run_report(&self) -> RunReport;
}

impl<W: Workload, P: PlacementPolicy + Sync> TenantJob for Executor<W, P> {
    fn step(&mut self) -> Result<Option<RoundReport>, HmError> {
        Executor::step(self).map(|r| r.cloned())
    }
    fn rounds_total(&self) -> usize {
        self.workload.num_instances()
    }
    fn rounds_done(&self) -> usize {
        self.next_round()
    }
    fn dram_resident_bytes(&self) -> u64 {
        self.sys.page_table().bytes_in(Tier::Dram)
    }
    fn set_dram_quota(&mut self, quota: Option<u64>) {
        self.sys.set_dram_quota(quota);
    }
    fn run_report(&self) -> RunReport {
        self.report()
    }
}

/// One round outcome, as observed by the accounting loop: everything
/// [`PlacementService::consume_entry`] reads from a tenant's job after a
/// step, snapshotted so a runner task can compute it remotely.
enum StepEntry {
    /// A round ran: its report, the tenant's post-round DRAM residency
    /// (the quota-invariant probe), and whether it was the final round.
    Round {
        round: RoundReport,
        resident: u64,
        done: bool,
    },
    /// `step()` returned `Ok(None)`: every round had already run.
    Exhausted,
    /// The tenant faulted; it will be quarantined.
    Fault(HmError),
    /// The job panicked (a bug, not a modeled fault): carried to the
    /// control loop so it re-raises where the serial path would have,
    /// instead of deadlocking a pipe that will never fill.
    Panicked(String),
}

/// Execute one round of `job` and snapshot the outcome — the execution
/// half of the old `step_tenant`, shared by the serial path (inline) and
/// the concurrent runners (on worker tasks).
fn step_entry(job: &mut dyn TenantJob) -> StepEntry {
    match job.step() {
        Ok(Some(round)) => {
            let resident = job.dram_resident_bytes();
            let done = job.rounds_done() >= job.rounds_total();
            StepEntry::Round {
                round,
                resident,
                done,
            }
        }
        Ok(None) => StepEntry::Exhausted,
        Err(e) => StepEntry::Fault(e),
    }
}

/// Placeholder occupying a tenant's registry slot while a runner task owns
/// the real job. Never stepped or reported against: the control loop only
/// touches a running tenant's job through its pipe, and the real job is
/// handed back before `run` returns.
struct ParkedJob;

impl TenantJob for ParkedJob {
    fn step(&mut self) -> Result<Option<RoundReport>, HmError> {
        unreachable!("parked tenant job stepped")
    }
    fn rounds_total(&self) -> usize {
        0
    }
    fn rounds_done(&self) -> usize {
        0
    }
    fn dram_resident_bytes(&self) -> u64 {
        0
    }
    fn set_dram_quota(&mut self, _quota: Option<u64>) {}
    fn run_report(&self) -> RunReport {
        unreachable!("parked tenant job queried")
    }
}

/// Service configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Shared DRAM pool the admission controller partitions, bytes.
    pub total_dram_bytes: u64,
    /// Submission-queue bound.
    pub max_queue: usize,
    /// DRR credit per weight unit per top-up cycle, ns.
    pub quantum_ns: f64,
    /// Hard cap on retry-after responses, ns.
    pub retry_cap_ns: u64,
    /// Seed for the deterministic retry-after jitter.
    pub seed: u64,
}

impl ServiceConfig {
    /// Defaults over a pool of `total_dram_bytes`: queue bound 32, 1 ms
    /// DRR quantum, 10 s retry-after cap, seed 0.
    pub fn new(total_dram_bytes: u64) -> Self {
        Self {
            total_dram_bytes,
            max_queue: 32,
            quantum_ns: 1_000_000.0,
            retry_cap_ns: 10_000_000_000,
            seed: 0,
        }
    }

    /// Set the submission-queue bound.
    pub fn with_max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue;
        self
    }

    /// Set the DRR quantum.
    pub fn with_quantum_ns(mut self, quantum_ns: f64) -> Self {
        self.quantum_ns = quantum_ns;
        self
    }

    /// Set the retry-after seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Outcome of a capacity-loss renegotiation pass
/// ([`PlacementService::offline_dram`]): what happened to every grant that
/// was outstanding when the pool shrank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Renegotiation {
    /// Bytes actually removed from the pool (≤ requested: the pool cannot
    /// go below zero).
    pub offlined_bytes: u64,
    /// Tenants whose full grant still fits — untouched.
    pub kept: Vec<TenantId>,
    /// Tenants squeezed to a smaller grant (new grant, ≥ their floor).
    pub squeezed: Vec<(TenantId, u64)>,
    /// Tenants whose floor no longer fits the remaining pool: displaced
    /// back to the admission queue with the suggested capped-Backoff
    /// retry-after, ns.
    pub displaced: Vec<(TenantId, f64)>,
    /// Displaced tenants that could not even be requeued (their floor
    /// exceeds the shrunk pool, or the queue shed them).
    pub shed: Vec<TenantId>,
}

/// The multi-tenant placement service: registry + admission + scheduler +
/// SLO accounting over one shared pool.
pub struct PlacementService {
    config: ServiceConfig,
    tenants: Vec<Tenant>,
    admission: AdmissionController,
    scheduler: DrrScheduler,
    /// Virtual clock: total round time served so far, ns.
    clock_ns: f64,
    /// Sum of grants held by currently running tenants.
    outstanding_grants: u64,
}

impl PlacementService {
    /// An empty service over `config`'s pool.
    pub fn new(config: ServiceConfig) -> Self {
        let admission = AdmissionController::new(
            config.total_dram_bytes,
            config.max_queue,
            config.retry_cap_ns,
            config.seed,
        );
        let scheduler = DrrScheduler::new(config.quantum_ns);
        Self {
            config,
            tenants: Vec::new(),
            admission,
            scheduler,
            clock_ns: 0.0,
            outstanding_grants: 0,
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Current virtual time, ns.
    pub fn clock_ns(&self) -> f64 {
        self.clock_ns
    }

    /// Every submitted tenant, in submission order (including rejected and
    /// shed ones).
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// The run report of one tenant's executor (per-round placement
    /// output; the bitwise isolation oracle compares these against solo
    /// baselines).
    pub fn tenant_run_report(&self, id: TenantId) -> RunReport {
        self.tenants[id.0 as usize].job.run_report()
    }

    /// Submit a tenant. The spec is validated, the tenant registered (even
    /// a rejected submission keeps its registry record for the final
    /// report), and the admission controller decides queue entry. Grants
    /// happen later, inside [`run`](Self::run) passes, strictly by
    /// priority.
    pub fn submit(
        &mut self,
        spec: TenantSpec,
        job: Box<dyn TenantJob>,
    ) -> Result<SubmitOutcome, HmError> {
        spec.validate().map_err(HmError::InvalidConfig)?;
        let id = TenantId(self.tenants.len() as u32);
        self.tenants.push(Tenant {
            id,
            spec,
            status: TenantStatus::Queued,
            granted_quota: None,
            submitted_at_ns: self.clock_ns,
            admitted_at_ns: None,
            finished_at_ns: None,
            deficit_ns: 0.0,
            service_ns: 0.0,
            rounds_done: 0,
            quota_violations: 0,
            retry_responses: 0,
            job,
        });
        Ok(self.admission.offer(&mut self.tenants, id))
    }

    /// Drive every queued and running tenant to completion (or quarantine,
    /// or shed) and return the final rollup. Deterministic: the interleaving
    /// is a pure function of the submitted specs and each tenant's own
    /// round times.
    ///
    /// With [`merch_sched::pool_jobs`] `> 1` the rounds of different
    /// tenants execute concurrently on the unified scheduler pool; the
    /// report is bitwise identical to the sequential run either way (see
    /// the module docs for the argument).
    pub fn run(&mut self) -> ServiceReport {
        if merch_sched::pool_jobs() > 1 {
            self.run_concurrent();
        } else {
            while self.step() {}
        }
        self.report()
    }

    /// One service iteration: shed expired queued tenants, run an admission
    /// pass over the free pool, and execute one round of the scheduler's
    /// pick. Returns `false` once nothing is queued or running — the
    /// round-granular stepping API behind [`run`](Self::run), exposed so
    /// harnesses can inject mid-run events (capacity offlining, probes)
    /// between rounds.
    pub fn step(&mut self) -> bool {
        self.admission
            .shed_expired(&mut self.tenants, self.clock_ns);
        self.admit_ready();
        let Some(id) = self.scheduler.pick(&mut self.tenants) else {
            // Nothing running. If tenants remain queued, the next admission
            // pass over the fully free pool must admit the highest-priority
            // one (its floor fits the pool — checked at submission).
            return self.admission.queue_len() != 0;
        };
        self.step_tenant(id);
        true
    }

    /// Sum of grants held by currently running tenants. Never exceeds
    /// [`ServiceConfig::total_dram_bytes`], including across
    /// [`offline_dram`](Self::offline_dram) shrinks.
    pub fn outstanding_grants(&self) -> u64 {
        self.outstanding_grants
    }

    /// A permanent mid-run capacity loss: `bytes` of the shared DRAM pool
    /// go away (a failed DIMM, rack-scale page retirement, the host
    /// reclaiming memory). The pool shrinks and every *running* grant is
    /// renegotiated strictly by (priority desc, submission order asc):
    /// higher-priority tenants keep as much of their grant as still fits,
    /// lower-priority ones are squeezed down to — never below — their
    /// declared floor, and tenants whose floor no longer fits are displaced
    /// back to the admission queue with a capped
    /// [`Backoff`](crate::backoff::Backoff) retry-after (re-admitted when a
    /// completion frees capacity; shed outright when their floor exceeds
    /// the shrunk pool). On return `outstanding grants ≤ shrunk pool` —
    /// quotas are never silently violated.
    pub fn offline_dram(&mut self, bytes: u64) -> Renegotiation {
        let lost = bytes.min(self.config.total_dram_bytes);
        self.config.total_dram_bytes -= lost;
        self.admission.total_dram_bytes = self.config.total_dram_bytes;
        let mut out = Renegotiation {
            offlined_bytes: lost,
            ..Renegotiation::default()
        };
        let mut running: Vec<TenantId> = self
            .tenants
            .iter()
            .filter(|t| matches!(t.status, TenantStatus::Running))
            .map(|t| t.id)
            .collect();
        running.sort_by_key(|id| {
            (
                std::cmp::Reverse(self.tenants[id.0 as usize].spec.priority),
                id.0,
            )
        });
        let mut remaining = self.config.total_dram_bytes;
        let mut outstanding = 0u64;
        for id in running {
            let t = &mut self.tenants[id.0 as usize];
            let old = t.granted_quota.unwrap_or(0);
            if t.spec.min_dram_quota <= remaining {
                // Grants were ≥ the floor when issued, so the squeeze
                // below never cuts under it.
                let grant = old.min(remaining);
                remaining -= grant;
                outstanding += grant;
                if grant == old {
                    out.kept.push(id);
                } else {
                    t.granted_quota = Some(grant);
                    t.job.set_dram_quota(Some(grant));
                    out.squeezed.push((id, grant));
                }
            } else {
                // Displaced: the grant is revoked in full. The zero quota
                // stays in force while the tenant waits; re-admission
                // installs the new grant.
                t.granted_quota = None;
                t.job.set_dram_quota(Some(0));
                t.retry_responses += 1;
                let attempt = t.retry_responses;
                let retry_after_ns = self.admission.retry_after_ns(id, attempt);
                match self.admission.offer(&mut self.tenants, id) {
                    SubmitOutcome::Enqueued(_) => out.displaced.push((id, retry_after_ns)),
                    SubmitOutcome::Rejected { .. } => out.shed.push(id),
                }
            }
        }
        self.outstanding_grants = outstanding;
        out
    }

    /// Current rollup (callable mid-run from tests).
    pub fn report(&self) -> ServiceReport {
        ServiceReport::from_tenants(&self.tenants, self.clock_ns)
    }

    /// One admission pass over the free pool.
    fn admit_ready(&mut self) {
        let free = self
            .config
            .total_dram_bytes
            .saturating_sub(self.outstanding_grants);
        for adm in self.admission.admit_pass(&mut self.tenants, free) {
            let t = &mut self.tenants[adm.id.0 as usize];
            t.status = TenantStatus::Running;
            t.granted_quota = Some(adm.granted);
            t.admitted_at_ns = Some(self.clock_ns);
            t.deficit_ns = 0.0;
            t.job.set_dram_quota(Some(adm.granted));
            self.outstanding_grants += adm.granted;
        }
    }

    /// Run one round of tenant `id`, charge its deficit, probe the quota
    /// invariant, and retire it on completion or fault.
    fn step_tenant(&mut self, id: TenantId) {
        let entry = step_entry(self.tenants[id.0 as usize].job.as_mut());
        self.consume_entry(id, entry);
    }

    /// Apply one round outcome to the service state — the accounting half
    /// of [`step_tenant`](Self::step_tenant), shared verbatim between the
    /// sequential loop (which computes entries inline) and the concurrent
    /// loop (which consumes them from runner pipes), so both paths perform
    /// the identical field updates in the identical order.
    fn consume_entry(&mut self, id: TenantId, entry: StepEntry) {
        match entry {
            StepEntry::Round {
                round,
                resident,
                done,
            } => {
                let t = &mut self.tenants[id.0 as usize];
                let dt = round.round_time_ns;
                t.rounds_done += 1;
                if let Some(granted) = t.granted_quota {
                    if resident > granted {
                        t.quota_violations += 1;
                    }
                }
                self.clock_ns += dt;
                self.scheduler.charge(&mut self.tenants, id, dt);
                if done {
                    self.retire(id, TenantStatus::Completed);
                }
            }
            StepEntry::Exhausted => self.retire(id, TenantStatus::Completed),
            StepEntry::Fault(HmError::Crashed { round }) => {
                self.retire(id, TenantStatus::Quarantined { round });
            }
            StepEntry::Fault(_) => {
                let round = self.tenants[id.0 as usize].rounds_done;
                self.retire(id, TenantStatus::Quarantined { round });
            }
            StepEntry::Panicked(msg) => panic!("tenant-round task panicked: {msg}"),
        }
    }

    /// The concurrent twin of the `while self.step() {}` loop: identical
    /// shed/admit/pick/charge control flow, but each admitted tenant's job
    /// moves onto a [`merch_sched::TaskClass::Tenant`] runner task that
    /// streams its round outcomes into a per-tenant pipe, so rounds of
    /// different tenants overlap while the control loop consumes the
    /// streams in exact serial order. Runner tasks own their job outright
    /// (the registry holds a parked placeholder meanwhile) and return it
    /// through a hand-back slot once the stream ends, so post-run report
    /// queries see the same executors the serial path would leave behind.
    fn run_concurrent(&mut self) {
        use merch_sched::TaskClass;
        let n = self.tenants.len();
        let pipes: Vec<Mutex<VecDeque<StepEntry>>> =
            (0..n).map(|_| Mutex::new(VecDeque::new())).collect();
        let handback: Vec<Mutex<Option<Box<dyn TenantJob>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let mut launched = vec![false; n];
        merch_sched::ensure_workers(merch_sched::pool_jobs().saturating_sub(1));
        merch_sched::scope(TaskClass::Tenant, |scope| loop {
            self.admission
                .shed_expired(&mut self.tenants, self.clock_ns);
            self.admit_ready();
            for t in self.tenants.iter_mut() {
                let i = t.id.0 as usize;
                if matches!(t.status, TenantStatus::Running) && !launched[i] {
                    launched[i] = true;
                    // The grant is installed on the job (`admit_ready`), so
                    // the runner computes the exact stream the serial loop
                    // would; grants never change mid-`run`.
                    let mut job = std::mem::replace(&mut t.job, Box::new(ParkedJob));
                    let (pipe, slot) = (&pipes[i], &handback[i]);
                    scope.spawn(move || {
                        loop {
                            let entry = match catch_unwind(AssertUnwindSafe(|| step_entry(
                                job.as_mut(),
                            ))) {
                                Ok(entry) => entry,
                                Err(p) => {
                                    StepEntry::Panicked(merch_sched::payload_msg(p.as_ref()))
                                }
                            };
                            let last = !matches!(entry, StepEntry::Round { done: false, .. });
                            pipe.lock().unwrap_or_else(|e| e.into_inner()).push_back(entry);
                            merch_sched::notify();
                            if last {
                                break;
                            }
                        }
                        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(job);
                    });
                }
            }
            let Some(id) = self.scheduler.pick(&mut self.tenants) else {
                if self.admission.queue_len() == 0 {
                    break;
                }
                // Queued tenants remain; the next admission pass over the
                // fully free pool admits the highest-priority one.
                continue;
            };
            let pipe = &pipes[id.0 as usize];
            let entry = {
                let mut ready = || !pipe.lock().unwrap_or_else(|e| e.into_inner()).is_empty();
                if !ready() {
                    // Blocks condvar-style, executing queued tenant-round
                    // (and deeper) tasks while this tenant's next round is
                    // still in flight.
                    merch_sched::help_until(TaskClass::Tenant, &mut ready);
                }
                pipe.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop_front()
                    .expect("runner streams one entry per picked round")
            };
            self.consume_entry(id, entry);
        });
        for t in self.tenants.iter_mut() {
            if let Some(job) = handback[t.id.0 as usize]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
            {
                t.job = job;
            }
        }
    }

    /// Retire a running tenant: record the final state, stamp the virtual
    /// clock, and release its grant back to the pool (the next admission
    /// pass may now admit queued tenants).
    fn retire(&mut self, id: TenantId, status: TenantStatus) {
        let t = &mut self.tenants[id.0 as usize];
        t.status = status;
        t.finished_at_ns = Some(self.clock_ns);
        if let Some(g) = t.granted_quota {
            self.outstanding_grants = self.outstanding_grants.saturating_sub(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::StaticPolicy;
    use crate::workload::testutil::SkewedWorkload;
    use crate::{HmConfig, HmSystem, PAGE_SIZE};

    fn job(tasks: usize, rounds: usize, seed: u64) -> Box<dyn TenantJob> {
        let app = SkewedWorkload {
            tasks,
            rounds,
            base_accesses: 1e5,
            obj_bytes: 8 * PAGE_SIZE,
        };
        let sys = HmSystem::new(HmConfig::calibrated(64 * PAGE_SIZE, 1024 * PAGE_SIZE), seed);
        Box::new(Executor::new(sys, app, StaticPolicy { tier: Tier::Pm }))
    }

    fn spec(name: &str, quota_pages: u64) -> TenantSpec {
        TenantSpec::new(name, quota_pages * PAGE_SIZE)
    }

    #[test]
    fn two_tenants_complete_and_share() {
        let mut svc = PlacementService::new(ServiceConfig::new(64 * PAGE_SIZE).with_seed(7));
        svc.submit(spec("a", 16), job(2, 3, 1)).unwrap();
        svc.submit(spec("b", 16), job(2, 3, 2)).unwrap();
        let rep = svc.run();
        assert_eq!(rep.completed, 2);
        assert_eq!(rep.quota_violations, 0);
        assert!(rep.clock_ns > 0.0);
        assert!(rep.fairness_jain > 0.5, "jain {}", rep.fairness_jain);
        for t in &rep.tenants {
            assert_eq!(t.status, TenantStatus::Completed);
            assert_eq!(t.rounds_done, 3);
        }
    }

    #[test]
    fn overload_squeezes_lowest_priority() {
        let mut svc = PlacementService::new(ServiceConfig::new(24 * PAGE_SIZE).with_seed(7));
        svc.submit(
            spec("hi", 16)
                .with_priority(9)
                .with_min_quota(8 * PAGE_SIZE),
            job(2, 2, 1),
        )
        .unwrap();
        svc.submit(
            spec("lo", 16)
                .with_priority(1)
                .with_min_quota(4 * PAGE_SIZE),
            job(2, 2, 2),
        )
        .unwrap();
        let rep = svc.run();
        let hi = &rep.tenants[0];
        let lo = &rep.tenants[1];
        assert_eq!(hi.granted_quota, 16 * PAGE_SIZE);
        assert!(!hi.squeezed);
        // The low-priority tenant is squeezed into what remains.
        assert_eq!(lo.granted_quota, 8 * PAGE_SIZE);
        assert!(lo.squeezed);
        assert_eq!(rep.quota_violations, 0);
    }

    #[test]
    fn full_queue_sheds_by_priority_with_retry_after() {
        let cfg = ServiceConfig::new(64 * PAGE_SIZE)
            .with_max_queue(1)
            .with_seed(3);
        let mut svc = PlacementService::new(cfg);
        svc.submit(spec("first", 8).with_priority(5), job(1, 1, 1))
            .unwrap();
        // Lower priority than the queued tenant: rejected with finite
        // retry-after.
        let out = svc
            .submit(spec("weak", 8).with_priority(1), job(1, 1, 2))
            .unwrap();
        match out {
            SubmitOutcome::Rejected {
                reason,
                retry_after_ns,
                ..
            } => {
                assert_eq!(reason, ShedReason::QueueFull);
                assert!(retry_after_ns.is_finite() && retry_after_ns > 0.0);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // Higher priority: displaces the queued tenant.
        let out = svc
            .submit(spec("strong", 8).with_priority(9), job(1, 1, 3))
            .unwrap();
        assert!(matches!(out, SubmitOutcome::Enqueued(_)));
        let rep = svc.run();
        assert_eq!(
            rep.tenants[0].status,
            TenantStatus::Shed(ShedReason::QueueFull)
        );
        assert_eq!(rep.tenants[2].status, TenantStatus::Completed);
    }

    #[test]
    fn impossible_floor_rejected_without_retry() {
        let mut svc = PlacementService::new(ServiceConfig::new(8 * PAGE_SIZE));
        let out = svc
            .submit(
                spec("huge", 64).with_min_quota(64 * PAGE_SIZE),
                job(1, 1, 1),
            )
            .unwrap();
        match out {
            SubmitOutcome::Rejected {
                reason,
                retry_after_ns,
                ..
            } => {
                assert_eq!(reason, ShedReason::CapacityExceeded);
                assert!(retry_after_ns.is_infinite());
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn queued_tenant_past_deadline_is_shed() {
        let mut svc = PlacementService::new(ServiceConfig::new(16 * PAGE_SIZE).with_seed(5));
        // Hog takes the whole pool; impatient can't fit and expires while
        // waiting.
        svc.submit(spec("hog", 16), job(2, 4, 1)).unwrap();
        svc.submit(spec("impatient", 16).with_deadline_ns(1.0), job(2, 2, 2))
            .unwrap();
        let rep = svc.run();
        assert_eq!(rep.tenants[0].status, TenantStatus::Completed);
        assert_eq!(
            rep.tenants[1].status,
            TenantStatus::Shed(ShedReason::DeadlineExpired)
        );
        assert!(rep.tenants[1].deadline_missed);
    }

    #[test]
    fn crash_quarantines_only_the_faulted_tenant() {
        use crate::fault::{CrashPoint, FaultKind, FaultPlan};
        let mut svc = PlacementService::new(ServiceConfig::new(64 * PAGE_SIZE).with_seed(11));
        let app = SkewedWorkload {
            tasks: 2,
            rounds: 4,
            base_accesses: 1e5,
            obj_bytes: 8 * PAGE_SIZE,
        };
        let mut sys = HmSystem::new(HmConfig::calibrated(64 * PAGE_SIZE, 1024 * PAGE_SIZE), 9);
        sys.set_fault_plan(FaultPlan::none().with_fault(FaultKind::Crash {
            round: 1,
            point: CrashPoint::BetweenRounds,
        }))
        .unwrap();
        let chaotic = Executor::new(sys, app, StaticPolicy { tier: Tier::Pm });
        svc.submit(spec("chaotic", 16), Box::new(chaotic)).unwrap();
        svc.submit(spec("steady", 16), job(2, 3, 2)).unwrap();
        let rep = svc.run();
        assert!(matches!(
            rep.tenants[0].status,
            TenantStatus::Quarantined { .. }
        ));
        assert_eq!(rep.tenants[1].status, TenantStatus::Completed);
        assert_eq!(rep.tenants[1].rounds_done, 3);
        assert_eq!(rep.quarantined, 1);
    }

    #[test]
    fn offline_renegotiates_grants_priority_ordered() {
        // Pool 40 pages: hi (quota 16, floor 8, prio 9) and lo (quota 16,
        // floor 8, prio 1) both run with full grants. Offlining 16 pages
        // shrinks the pool to 24: hi keeps its 16, lo is squeezed to the
        // remaining 8 — exactly its floor, honored.
        let mut svc = PlacementService::new(ServiceConfig::new(40 * PAGE_SIZE).with_seed(7));
        svc.submit(
            spec("hi", 16)
                .with_priority(9)
                .with_min_quota(8 * PAGE_SIZE),
            job(2, 4, 1),
        )
        .unwrap();
        svc.submit(
            spec("lo", 16)
                .with_priority(1)
                .with_min_quota(8 * PAGE_SIZE),
            job(2, 4, 2),
        )
        .unwrap();
        assert!(svc.step());
        assert_eq!(svc.outstanding_grants(), 32 * PAGE_SIZE);
        let ren = svc.offline_dram(16 * PAGE_SIZE);
        assert_eq!(ren.offlined_bytes, 16 * PAGE_SIZE);
        assert_eq!(ren.kept, vec![TenantId(0)]);
        assert_eq!(ren.squeezed, vec![(TenantId(1), 8 * PAGE_SIZE)]);
        assert!(ren.displaced.is_empty() && ren.shed.is_empty());
        assert_eq!(svc.outstanding_grants(), 24 * PAGE_SIZE);
        assert!(svc.outstanding_grants() <= svc.config().total_dram_bytes);
        let rep = svc.run();
        assert_eq!(rep.completed, 2);
        assert_eq!(rep.quota_violations, 0);
    }

    #[test]
    fn offline_displaces_with_capped_retry_after_and_sheds_impossible_floors() {
        // Pool 32 pages, both tenants hold 16. Offlining 26 pages leaves 6:
        // hi is squeezed to its floor (4 ≤ 6 → grant 6), lo's floor of 8
        // exceeds the remainder (0) *and* the shrunk pool — shed outright
        // with no retry that could ever help.
        let mut svc = PlacementService::new(ServiceConfig::new(32 * PAGE_SIZE).with_seed(7));
        svc.submit(
            spec("hi", 16)
                .with_priority(9)
                .with_min_quota(4 * PAGE_SIZE),
            job(2, 4, 1),
        )
        .unwrap();
        svc.submit(
            spec("lo", 16)
                .with_priority(1)
                .with_min_quota(8 * PAGE_SIZE),
            job(2, 4, 2),
        )
        .unwrap();
        assert!(svc.step());
        let ren = svc.offline_dram(26 * PAGE_SIZE);
        assert_eq!(ren.squeezed, vec![(TenantId(0), 6 * PAGE_SIZE)]);
        assert_eq!(ren.shed, vec![TenantId(1)]);
        assert!(svc.outstanding_grants() <= svc.config().total_dram_bytes);
        let rep = svc.run();
        assert_eq!(rep.tenants[0].status, TenantStatus::Completed);
        assert_eq!(
            rep.tenants[1].status,
            TenantStatus::Shed(ShedReason::CapacityExceeded)
        );
        assert!(rep.tenants[1].retry_responses >= 1);
        assert_eq!(rep.quota_violations, 0);
    }

    #[test]
    fn displaced_tenant_requeues_and_completes_after_capacity_frees() {
        // Pool 32 pages; lo's floor (12) fits the shrunk pool of 20 but not
        // what remains after hi keeps 16 — displaced back to the queue with
        // a finite capped retry-after, then re-admitted once hi completes.
        let mut svc = PlacementService::new(ServiceConfig::new(32 * PAGE_SIZE).with_seed(7));
        svc.submit(
            spec("hi", 16)
                .with_priority(9)
                .with_min_quota(8 * PAGE_SIZE),
            job(2, 2, 1),
        )
        .unwrap();
        svc.submit(
            spec("lo", 16)
                .with_priority(1)
                .with_min_quota(12 * PAGE_SIZE),
            job(2, 2, 2),
        )
        .unwrap();
        assert!(svc.step());
        let ren = svc.offline_dram(12 * PAGE_SIZE);
        assert_eq!(ren.kept, vec![TenantId(0)]);
        assert_eq!(ren.displaced.len(), 1);
        let (id, retry_after_ns) = ren.displaced[0];
        assert_eq!(id, TenantId(1));
        assert!(retry_after_ns.is_finite() && retry_after_ns > 0.0);
        assert!(retry_after_ns <= svc.config().retry_cap_ns as f64);
        assert_eq!(svc.outstanding_grants(), 16 * PAGE_SIZE);
        let rep = svc.run();
        assert_eq!(rep.completed, 2);
        assert_eq!(rep.quota_violations, 0);
        // The re-admitted grant fits the shrunk pool.
        assert_eq!(rep.tenants[1].granted_quota, 16 * PAGE_SIZE);
    }

    #[test]
    fn drr_share_tracks_weight() {
        let mut svc = PlacementService::new(ServiceConfig::new(64 * PAGE_SIZE).with_seed(13));
        svc.submit(spec("w1", 16).with_weight(1), job(2, 12, 1))
            .unwrap();
        svc.submit(spec("w3", 16).with_weight(3), job(2, 12, 2))
            .unwrap();
        let rep = svc.run();
        // Identical workloads, so equal total service; fairness of the
        // *rate* shows up in the interleaving order instead. Both finish.
        assert_eq!(rep.completed, 2);
        // Weight-3 tenant must never fall behind the weight-1 tenant by
        // more than a cycle's lag at completion time.
        assert!(rep.tenants[1].finished_at_ns <= rep.tenants[0].finished_at_ns);
    }
}
