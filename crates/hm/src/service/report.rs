//! Per-tenant SLO accounting and the service-level rollup.
//!
//! Every number here is derived from deterministic inputs (virtual clock,
//! round reports, grant decisions), so replaying a scenario with the same
//! seed reproduces every report bit-exactly — `{:?}` equality over
//! [`TenantReport`]s is the replay oracle the bench harness uses.

use serde::{Deserialize, Serialize};

use super::tenant::{Tenant, TenantStatus};
use crate::fault::FaultSummary;

/// SLO report for one tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Registry handle.
    pub id: u32,
    /// Tenant name.
    pub name: String,
    /// Declared priority class.
    pub priority: u8,
    /// Declared DRR weight.
    pub weight: u32,
    /// Final lifecycle state.
    pub status: TenantStatus,
    /// Requested DRAM quota, bytes.
    pub requested_quota: u64,
    /// Granted DRAM bytes (0 when never admitted).
    pub granted_quota: u64,
    /// Was the grant squeezed below the request?
    pub squeezed: bool,
    /// Virtual submission time, ns.
    pub submitted_at_ns: f64,
    /// Virtual admission time, ns (`-1.0` when never admitted).
    pub admitted_at_ns: f64,
    /// Virtual completion/quarantine time, ns (`-1.0` when neither).
    pub finished_at_ns: f64,
    /// Queue wait: admission − submission, ns (0 when never admitted).
    pub wait_ns: f64,
    /// Declared deadline, ns (infinite when none).
    pub deadline_ns: f64,
    /// Did the tenant miss its deadline (finished late, or shed/queued past
    /// it)?
    pub deadline_missed: bool,
    /// Rounds completed under the service.
    pub rounds_done: u64,
    /// Rounds the workload declares in total.
    pub rounds_total: u64,
    /// Total round time served, ns.
    pub service_ns: f64,
    /// Rounds the tenant's policy spent in a degraded (ladder fallback)
    /// mode — per-tenant by construction, since the ladder lives in the
    /// tenant's own policy instance.
    pub degraded_rounds: u64,
    /// Straggler-watchdog firings across the tenant's rounds.
    pub straggler_events: u64,
    /// Migration epochs committed / rolled back inside this tenant.
    pub epoch_commits: u64,
    /// See [`epoch_commits`](Self::epoch_commits).
    pub epoch_rollbacks: u64,
    /// Fault accounting from the tenant's own injector (all-zero without a
    /// chaos plan).
    pub fault: FaultSummary,
    /// Rounds where DRAM residency exceeded the grant (isolation invariant:
    /// must be 0).
    pub quota_violations: u64,
    /// Retry-after responses issued to this tenant at submission time.
    pub retry_responses: u32,
    /// Times this tenant's circuit breaker tripped Closed → Open
    /// (DESIGN.md §17). 0 for a healthy tenant.
    pub breaker_trips: u32,
}

impl TenantReport {
    /// Build the report for one registry record against the current
    /// virtual clock.
    pub fn from_tenant(t: &Tenant, now_ns: f64) -> Self {
        let run = t.job.run_report();
        let admitted = t.admitted_at_ns.unwrap_or(-1.0);
        let finished = t.finished_at_ns.unwrap_or(-1.0);
        let deadline_missed = match t.status {
            TenantStatus::Completed => finished > t.spec.deadline_ns,
            TenantStatus::Shed(_) | TenantStatus::Quarantined { .. } => {
                t.spec.deadline_ns.is_finite()
            }
            TenantStatus::Queued | TenantStatus::Running => now_ns > t.spec.deadline_ns,
        };
        Self {
            id: t.id.0,
            name: t.spec.name.clone(),
            priority: t.spec.priority,
            weight: t.spec.weight,
            status: t.status,
            requested_quota: t.spec.dram_quota,
            granted_quota: t.granted_quota.unwrap_or(0),
            squeezed: t.granted_quota.is_some_and(|g| g < t.spec.dram_quota),
            submitted_at_ns: t.submitted_at_ns,
            admitted_at_ns: admitted,
            finished_at_ns: finished,
            wait_ns: t
                .admitted_at_ns
                .map_or(0.0, |a| (a - t.submitted_at_ns).max(0.0)),
            deadline_ns: t.spec.deadline_ns,
            deadline_missed,
            rounds_done: t.rounds_done,
            rounds_total: t.job.rounds_total() as u64,
            service_ns: t.service_ns,
            degraded_rounds: run.fault.degraded_rounds,
            straggler_events: run.rounds.iter().map(|r| r.straggler_events).sum(),
            epoch_commits: run.epoch_commits,
            epoch_rollbacks: run.epoch_rollbacks,
            fault: run.fault,
            quota_violations: t.quota_violations,
            retry_responses: t.retry_responses,
            breaker_trips: t.breaker.trips,
        }
    }
}

/// Service-level rollup across every submitted tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Final virtual clock, ns (total round time served across tenants).
    pub clock_ns: f64,
    /// Per-tenant reports, in submission order.
    pub tenants: Vec<TenantReport>,
    /// Tenants that were admitted at some point.
    pub admitted: u64,
    /// Tenants that ran to completion.
    pub completed: u64,
    /// Tenants quarantined by a fault.
    pub quarantined: u64,
    /// Tenants shed (queue-full, deadline, or capacity).
    pub shed: u64,
    /// Admitted tenants whose grant was squeezed below the request.
    pub squeezed: u64,
    /// Tenants that missed their deadline.
    pub deadline_misses: u64,
    /// Total quota violations (isolation invariant: must be 0).
    pub quota_violations: u64,
    /// Tenants whose circuit breaker tripped at least once — contained
    /// faults the service survived without perturbing co-tenants.
    pub tripped: u64,
    /// Jain fairness index of weight-normalised service time across
    /// tenants that received any service: 1.0 = perfectly proportional.
    pub fairness_jain: f64,
}

impl ServiceReport {
    /// Roll up the registry.
    pub fn from_tenants(tenants: &[Tenant], now_ns: f64) -> Self {
        let reports: Vec<TenantReport> = tenants
            .iter()
            .map(|t| TenantReport::from_tenant(t, now_ns))
            .collect();
        let shares: Vec<f64> = reports
            .iter()
            .filter(|r| r.service_ns > 0.0)
            .map(|r| r.service_ns / r.weight as f64)
            .collect();
        Self {
            clock_ns: now_ns,
            admitted: reports.iter().filter(|r| r.admitted_at_ns >= 0.0).count() as u64,
            completed: reports
                .iter()
                .filter(|r| r.status == TenantStatus::Completed)
                .count() as u64,
            quarantined: reports
                .iter()
                .filter(|r| matches!(r.status, TenantStatus::Quarantined { .. }))
                .count() as u64,
            shed: reports
                .iter()
                .filter(|r| matches!(r.status, TenantStatus::Shed(_)))
                .count() as u64,
            squeezed: reports.iter().filter(|r| r.squeezed).count() as u64,
            deadline_misses: reports.iter().filter(|r| r.deadline_missed).count() as u64,
            quota_violations: reports.iter().map(|r| r.quota_violations).sum(),
            tripped: reports.iter().filter(|r| r.breaker_trips > 0).count() as u64,
            fairness_jain: jain_index(&shares),
            tenants: reports,
        }
    }
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`; 1.0 when all shares are
/// equal, `1/n` when one tenant hoards everything. 1.0 for empty input.
pub fn jain_index(shares: &[f64]) -> f64 {
    if shares.is_empty() {
        return 1.0;
    }
    let sum: f64 = shares.iter().sum();
    let sq: f64 = shares.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (shares.len() as f64 * sq)
}
