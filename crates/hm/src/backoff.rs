//! Bounded retry with deterministic jitter.
//!
//! PR 1 gave page migration a bounded retry loop; the checkpoint WAL needs
//! the same discipline for transient write failures. [`Backoff`] unifies
//! the two: a retry budget, an attempt counter, and an exponential backoff
//! delay whose jitter is a pure function of the run seed and the attempt
//! index — so two executions of the same plan charge bit-identical delays
//! and the retry schedule replays exactly under checkpoint/restart.

use serde::{Deserialize, Serialize};

/// splitmix64 finalizer (same mixer the fault injector uses), local so the
/// jitter stream never couples to fault-decision draws.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Bounded-retry state machine with deterministic jitter.
///
/// ```
/// use merch_hm::backoff::Backoff;
///
/// let mut b = Backoff::new(2, 42); // 2 retries after the first attempt
/// assert_eq!(b.attempt(), 0);
/// assert!(b.retry());  // attempt 1
/// assert!(b.retry());  // attempt 2
/// assert!(!b.retry()); // budget exhausted
/// assert_eq!(b.attempt(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Backoff {
    max_retries: u32,
    attempt: u32,
    seed: u64,
    /// Hard ceiling on [`delay_ns`](Self::delay_ns), in integer ns. `None`
    /// (the default) leaves the exponential envelope uncapped, which keeps
    /// every pre-existing call site (page migration, WAL writes)
    /// bit-identical. The admission controller caps its retry-after
    /// schedule so a repeatedly rejected tenant is never told to wait
    /// unboundedly long.
    cap_ns: Option<u64>,
}

/// Base delay of the exponential backoff schedule, ns (one page-fault
/// round trip; doubles every retry).
pub const BACKOFF_BASE_NS: f64 = 1_000.0;

impl Backoff {
    /// A fresh schedule: one initial attempt plus up to `max_retries`
    /// retries. `seed` should mix the run seed with the identity of the
    /// retried operation (page id, WAL record index, ...).
    pub fn new(max_retries: u32, seed: u64) -> Self {
        Self {
            max_retries,
            attempt: 0,
            seed,
            cap_ns: None,
        }
    }

    /// Cap [`delay_ns`](Self::delay_ns) at `cap_ns`. The jittered
    /// exponential schedule is computed first and then clamped, so delays
    /// below the cap are bit-identical to the uncapped schedule.
    pub fn with_cap_ns(mut self, cap_ns: u64) -> Self {
        self.cap_ns = Some(cap_ns);
        self
    }

    /// Index of the current attempt (0 = first try).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Register a failed attempt. Returns `true` when another attempt is
    /// allowed, `false` when the retry budget is exhausted (the attempt
    /// counter then equals total attempts made).
    pub fn retry(&mut self) -> bool {
        self.attempt += 1;
        self.attempt <= self.max_retries
    }

    /// Simulated delay before the *current* attempt, ns: exponential in the
    /// attempt index with a deterministic jitter factor in `[0.5, 1.5)`
    /// drawn from (seed, attempt), clamped to the hard cap when one is set
    /// via [`with_cap_ns`](Self::with_cap_ns). The first attempt waits
    /// nothing.
    pub fn delay_ns(&self) -> f64 {
        if self.attempt == 0 {
            return 0.0;
        }
        let h = mix64(self.seed ^ ((self.attempt as u64) << 32));
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let d = BACKOFF_BASE_NS * (1u64 << (self.attempt - 1).min(16)) as f64 * (0.5 + u);
        match self.cap_ns {
            Some(cap) => d.min(cap as f64),
            None => d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_initial_attempt_plus_retries() {
        let mut b = Backoff::new(0, 1);
        assert_eq!(b.attempt(), 0);
        assert!(!b.retry());
        assert_eq!(b.attempt(), 1);
    }

    #[test]
    fn delay_is_deterministic_and_grows() {
        let mk = |attempts: u32| {
            let mut b = Backoff::new(10, 7);
            for _ in 0..attempts {
                b.retry();
            }
            b.delay_ns()
        };
        assert_eq!(mk(0), 0.0);
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
        // Exponential envelope: attempt 4's floor beats attempt 1's ceiling.
        assert!(mk(4) > BACKOFF_BASE_NS * 4.0);
        for a in 1..6 {
            let d = mk(a);
            let scale = BACKOFF_BASE_NS * (1u64 << (a - 1)) as f64;
            assert!(d >= 0.5 * scale && d < 1.5 * scale, "attempt {a}: {d}");
        }
    }

    #[test]
    fn cap_clamps_late_attempts_only() {
        let cap = 4_000u64;
        for a in 1..12u32 {
            let mut free = Backoff::new(16, 9);
            let mut capped = Backoff::new(16, 9).with_cap_ns(cap);
            for _ in 0..a {
                free.retry();
                capped.retry();
            }
            let (df, dc) = (free.delay_ns(), capped.delay_ns());
            if df <= cap as f64 {
                // Below the cap the schedules are bit-identical.
                assert_eq!(df, dc, "attempt {a}");
            } else {
                assert_eq!(dc, cap as f64, "attempt {a}");
            }
        }
        // The envelope eventually exceeds the cap, so the clamp is live.
        let mut b = Backoff::new(16, 9).with_cap_ns(cap);
        for _ in 0..10 {
            b.retry();
        }
        assert_eq!(b.delay_ns(), cap as f64);
    }

    #[test]
    fn different_seeds_different_jitter() {
        let mut a = Backoff::new(5, 1);
        let mut b = Backoff::new(5, 2);
        a.retry();
        b.retry();
        assert_ne!(a.delay_ns(), b.delay_ns());
    }
}
