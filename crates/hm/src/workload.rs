//! The task-parallel application abstraction.
//!
//! A [`Workload`] is an application in the paper's model (§2): a set of
//! tasks executed repeatedly (each repetition is a *task instance*, possibly
//! with a new input), synchronising at the end of every round. Round 0 uses
//! the *base input* (the paper's profiling run).

use std::collections::BTreeMap;

use crate::object::ObjectSpec;
use crate::system::HmSystem;
use crate::trace::TaskWork;

/// Task index within an application.
pub type TaskId = usize;

/// A task-parallel HPC application runnable on the emulated HM.
pub trait Workload: Send {
    /// Application name ("SpGEMM", "WarpX", ...).
    fn name(&self) -> &str;

    /// Data objects the user registers through the `LB_HM_config` API,
    /// sized for the largest input the run will see (pages are allocated
    /// once; per-round logical sizes shrink within this envelope).
    fn object_specs(&self) -> Vec<ObjectSpec>;

    /// Number of parallel tasks (MPI ranks / OpenMP threads).
    fn num_tasks(&self) -> usize;

    /// Number of task instances (rounds) the run executes; round 0 is the
    /// base input.
    fn num_instances(&self) -> usize;

    /// Logical object sizes for `round`'s input, as `(name, bytes)` pairs.
    /// Defaults to the allocation sizes (inputs that do not vary).
    fn object_sizes(&self, round: usize) -> Vec<(String, u64)> {
        let _ = round;
        self.object_specs()
            .into_iter()
            .map(|s| (s.name, s.size))
            .collect()
    }

    /// Produce the work of every task for `round`. `sys` provides object
    /// ids (lookup by name).
    fn instance(&mut self, round: usize, sys: &HmSystem) -> Vec<TaskWork>;

    /// Kernel IR of the application's hot loops for Spindle-like
    /// classification (Table 1). Default: empty.
    fn kernel_ir(&self) -> merch_patterns::KernelIr {
        merch_patterns::KernelIr::new(self.name())
    }

    /// Statically-known blocking-reuse hints per object name (the tiling
    /// factors dense kernels declare; feeds the offline α path). Default:
    /// none (reuse 1).
    fn reuse_hints(&self) -> BTreeMap<String, f64> {
        BTreeMap::new()
    }

    /// Objects whose hot-page distribution is re-drawn for `round`
    /// (name, skew): inputs like "a different sparse matrix each
    /// iteration" move their hot entries between instances, which is what
    /// makes one-shot static placements go stale. Default: none.
    fn hot_page_drift(&self, round: usize) -> Vec<(String, f64)> {
        let _ = round;
        Vec::new()
    }
}

/// Synthetic workloads for tests, benchmarks and documentation examples.
pub mod testutil {
    use super::*;
    use crate::object::ObjectId;
    use crate::trace::{ObjectAccess, Phase};
    use merch_patterns::AccessPattern;

    /// A deliberately imbalanced synthetic workload: task k performs
    /// (k+1)·base accesses to its private object. Used by runtime tests.
    pub struct SkewedWorkload {
        pub tasks: usize,
        pub rounds: usize,
        pub base_accesses: f64,
        pub obj_bytes: u64,
    }

    impl Workload for SkewedWorkload {
        fn name(&self) -> &str {
            "skewed"
        }
        fn object_specs(&self) -> Vec<ObjectSpec> {
            (0..self.tasks)
                .map(|t| ObjectSpec::new(&format!("obj{t}"), self.obj_bytes).owned_by(t))
                .collect()
        }
        fn num_tasks(&self) -> usize {
            self.tasks
        }
        fn num_instances(&self) -> usize {
            self.rounds
        }
        fn instance(&mut self, _round: usize, sys: &HmSystem) -> Vec<TaskWork> {
            (0..self.tasks)
                .map(|t| {
                    let oid: ObjectId = sys.object_by_name(&format!("obj{t}")).unwrap();
                    TaskWork::new(t).with_phase(Phase::new("work", 0.0).with_access(
                        ObjectAccess::new(
                            oid,
                            self.base_accesses * (t + 1) as f64,
                            8,
                            AccessPattern::Stream,
                            0.2,
                        ),
                    ))
                })
                .collect()
        }
    }
}
