//! Phase-level access summaries and the caching-effect model.
//!
//! A task instance consists of [`Phase`]s (the paper's basic blocks /
//! execution phases, e.g. NWChem-TC's five phases). Each phase declares how
//! many *program-level* accesses it makes to each data object, with what
//! pattern, and how much pure compute it performs. The
//! [`memory_accesses`] function converts program accesses into
//! *main-memory* accesses — the quantity Equation 1 estimates — applying
//! the caching effects that make α non-trivial:
//!
//! * stream/strided accesses coalesce into cache lines;
//! * stencil neighbourhood reuse collapses `points` program accesses per
//!   element into one line fetch;
//! * random accesses hit in the LLC with a probability that grows as the
//!   object shrinks relative to the cache (this size-*dependent* miss rate
//!   is exactly why random patterns need online α refinement);
//! * statically-known tiling/blocking reuse (`reuse`) divides accesses for
//!   blocked dense kernels (DMRG's high α comes from here).

use serde::{Deserialize, Serialize};

use merch_patterns::AccessPattern;

use crate::object::ObjectId;
use crate::CACHE_LINE_BYTES;

/// Program-level access summary of one phase to one object.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectAccess {
    /// Object accessed.
    pub object: ObjectId,
    /// Element-level program accesses this phase performs on the object.
    pub accesses: f64,
    /// Element size in bytes.
    pub elem_bytes: u32,
    /// Access pattern of this object in this phase.
    pub pattern: AccessPattern,
    /// Fraction of accesses that are stores.
    pub write_fraction: f64,
    /// Statically-known blocking/tiling reuse factor (≥ 1): dense kernels
    /// touch each element `reuse` times per one main-memory fetch.
    pub reuse: f64,
}

impl ObjectAccess {
    /// Convenience constructor with no blocking reuse.
    pub fn new(
        object: ObjectId,
        accesses: f64,
        elem_bytes: u32,
        pattern: AccessPattern,
        write_fraction: f64,
    ) -> Self {
        Self {
            object,
            accesses,
            elem_bytes,
            pattern,
            write_fraction,
            reuse: 1.0,
        }
    }

    /// Set the blocking reuse factor.
    pub fn with_reuse(mut self, reuse: f64) -> Self {
        self.reuse = reuse.max(1.0);
        self
    }
}

/// LLC hit probability of a random-pattern access into an object of
/// `object_size` bytes given `llc_bytes` of last-level cache. A small
/// temporal-locality boost (repeated hot indices) lets objects a few times
/// larger than the LLC still see some hits.
pub fn random_hit_rate(object_size: u64, llc_bytes: u64) -> f64 {
    if object_size == 0 {
        return 1.0;
    }
    (3.0 * llc_bytes as f64 / object_size as f64).min(0.95)
}

/// Convert program-level accesses into main-memory accesses (cache lines
/// fetched from / written to main memory) — the ground truth the
/// Merchandiser estimator approximates through Equation 1.
pub fn memory_accesses(acc: &ObjectAccess, object_size: u64, llc_bytes: u64) -> f64 {
    if acc.accesses <= 0.0 {
        return 0.0;
    }
    let d = acc.elem_bytes.max(1) as f64;
    let line = CACHE_LINE_BYTES as f64;
    let per_access_lines = match acc.pattern {
        // Unit-stride: d bytes of each line are new per access.
        AccessPattern::Stream => (d / line).min(1.0),
        // Constant stride s: each access advances s·d bytes; accesses within
        // one line coalesce, accesses beyond a line each fetch a line.
        AccessPattern::Strided { stride, elem_bytes } => {
            let step = stride.max(1) as f64 * elem_bytes.max(1) as f64;
            (step / line).min(1.0)
        }
        // p-point stencil: p program accesses per element, one line fetch
        // per line of the object per sweep (leading edge).
        AccessPattern::Stencil { points, .. } => (d / line).min(1.0) / points.max(1) as f64,
        // Random: every miss fetches a full line; hit rate depends on the
        // object size relative to the LLC.
        AccessPattern::Random => 1.0 - random_hit_rate(object_size, llc_bytes),
    };
    (acc.accesses * per_access_lines / acc.reuse.max(1.0)).max(0.0)
}

/// Bytes moved to/from main memory for `mem_accesses` line-granular accesses.
pub fn bytes_for(mem_accesses: f64) -> f64 {
    mem_accesses * CACHE_LINE_BYTES as f64
}

/// One execution phase of a task instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Phase {
    /// Phase name (doubles as the basic-block label for §5.2 timing).
    pub name: String,
    /// Object accesses performed by the phase.
    pub accesses: Vec<ObjectAccess>,
    /// Pure compute time (arithmetic that would proceed from cache/registers
    /// with memory removed), ns.
    pub compute_ns: f64,
}

impl Phase {
    /// New phase.
    pub fn new(name: &str, compute_ns: f64) -> Self {
        Self {
            name: name.to_string(),
            accesses: Vec::new(),
            compute_ns,
        }
    }

    /// Add an object access (builder style).
    pub fn with_access(mut self, a: ObjectAccess) -> Self {
        self.accesses.push(a);
        self
    }

    /// Total program-level accesses of the phase.
    pub fn total_program_accesses(&self) -> f64 {
        self.accesses.iter().map(|a| a.accesses).sum()
    }
}

/// The work of one task in one task instance (one round): an ordered list
/// of phases.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskWork {
    /// Task index within the application.
    pub task: usize,
    /// Phases executed in order.
    pub phases: Vec<Phase>,
}

impl TaskWork {
    /// New task work item.
    pub fn new(task: usize) -> Self {
        Self {
            task,
            phases: Vec::new(),
        }
    }

    /// Add a phase (builder style).
    pub fn with_phase(mut self, p: Phase) -> Self {
        self.phases.push(p);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LLC: u64 = 32 << 20;

    fn acc(pattern: AccessPattern, n: f64, d: u32) -> ObjectAccess {
        ObjectAccess::new(ObjectId(0), n, d, pattern, 0.0)
    }

    #[test]
    fn stream_coalesces_to_lines() {
        // 8 f64 accesses per 64 B line.
        let m = memory_accesses(&acc(AccessPattern::Stream, 8000.0, 8), 1 << 20, LLC);
        assert!((m - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn large_stride_one_line_per_access() {
        let p = AccessPattern::Strided {
            stride: 64,
            elem_bytes: 8,
        };
        let m = memory_accesses(&acc(p, 1000.0, 8), 1 << 20, LLC);
        assert!((m - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn small_stride_partial_lines() {
        let p = AccessPattern::Strided {
            stride: 2,
            elem_bytes: 8,
        }; // 16 B per step → 1/4 line per access
        let m = memory_accesses(&acc(p, 1000.0, 8), 1 << 20, LLC);
        assert!((m - 250.0).abs() < 1e-9);
    }

    #[test]
    fn stencil_reuses_neighbourhood() {
        let p = AccessPattern::Stencil {
            points: 5,
            input_dependent: false,
        };
        // 5n program accesses over n elements → n·d/64 line fetches.
        let n = 10_000.0;
        let m = memory_accesses(&acc(p, 5.0 * n, 8), 1 << 20, LLC);
        assert!((m - n * 8.0 / 64.0).abs() < 1e-6);
    }

    #[test]
    fn random_miss_rate_depends_on_size() {
        let small = memory_accesses(&acc(AccessPattern::Random, 1000.0, 8), LLC / 2, LLC);
        let large = memory_accesses(&acc(AccessPattern::Random, 1000.0, 8), LLC * 64, LLC);
        assert!(small < large, "small-object gathers should hit in LLC");
        // Huge object: miss rate → ~1.
        assert!(large > 900.0);
        // Small object: capped 95 % hit rate → ≥ 5 % misses.
        assert!(small >= 1000.0 * 0.05 - 1e-9);
    }

    #[test]
    fn blocking_reuse_divides() {
        let a = acc(AccessPattern::Stream, 8000.0, 8).with_reuse(4.0);
        let m = memory_accesses(&a, 1 << 20, LLC);
        assert!((m - 250.0).abs() < 1e-9);
    }

    #[test]
    fn zero_accesses_zero_memory() {
        let m = memory_accesses(&acc(AccessPattern::Random, 0.0, 8), 1 << 20, LLC);
        assert_eq!(m, 0.0);
    }

    #[test]
    fn phase_builders() {
        let p = Phase::new("numeric", 1e6)
            .with_access(acc(AccessPattern::Stream, 10.0, 8))
            .with_access(acc(AccessPattern::Random, 20.0, 8));
        assert_eq!(p.total_program_accesses(), 30.0);
        let w = TaskWork::new(2).with_phase(p);
        assert_eq!(w.task, 2);
        assert_eq!(w.phases.len(), 1);
    }
}
