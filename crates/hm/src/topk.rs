//! Deterministic top-k page selection.
//!
//! Every hot/cold page ranking in the suite (promotion candidates,
//! LFU eviction, shared-page credit, the hot-page fallback rung) selects
//! the k most extreme pages from an id-ordered candidate list. A full
//! `sort_by` is O(n log n) in the candidate count; these helpers use
//! `select_nth_unstable_by` for an O(n + k log k) bound while producing
//! the *exact* sequence the old stable sorts produced: the comparator is a
//! total order (`total_cmp` on the score, ascending [`PageId`] tiebreak),
//! so the selected prefix is unique regardless of partition internals —
//! bit-identical replay is preserved.

use crate::page::PageId;

type Cmp = fn(&(PageId, f64), &(PageId, f64)) -> std::cmp::Ordering;

fn hotter(a: &(PageId, f64), b: &(PageId, f64)) -> std::cmp::Ordering {
    b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0))
}

fn colder(a: &(PageId, f64), b: &(PageId, f64)) -> std::cmp::Ordering {
    a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0))
}

fn select(mut items: Vec<(PageId, f64)>, k: usize, cmp: Cmp) -> Vec<(PageId, f64)> {
    if k == 0 {
        items.clear();
        return items;
    }
    if k < items.len() {
        items.select_nth_unstable_by(k, cmp);
        items.truncate(k);
    }
    items.sort_unstable_by(cmp);
    items
}

/// The `k` hottest pages (largest score first; ties break toward the
/// smaller page id, as the old id-ordered stable sorts did). `k >= len`
/// returns the whole list, sorted.
pub fn hot_pages_top_k(items: Vec<(PageId, f64)>, k: usize) -> Vec<(PageId, f64)> {
    select(items, k, hotter)
}

/// The `k` coldest pages (smallest score first; same id tiebreak).
pub fn cold_pages_top_k(items: Vec<(PageId, f64)>, k: usize) -> Vec<(PageId, f64)> {
    select(items, k, colder)
}

/// A run of candidate pages: `len` contiguous pages from `start`, all
/// sharing `score` (weights and counters are uniform within an extent).
pub type CandidateRun = (PageId, u64, f64);

/// Rank whole runs by `cmp` on `(start, score)` and expand the winners to
/// exactly `k` `(page, score)` pairs, ascending ids within each run.
///
/// This reproduces the per-page selection bit for bit: pages of one run
/// share a score, so the per-page total order (score, then ascending id)
/// lists each run's pages contiguously and orders runs exactly as `cmp`
/// orders `(start, score)`. Because every run holds at least one page, the
/// best `k` runs always cover the best `k` pages — selection cost is
/// O(runs + k log k) instead of O(pages).
fn expand_runs(mut runs: Vec<CandidateRun>, k: usize, cmp: Cmp) -> Vec<(PageId, f64)> {
    if k == 0 || runs.is_empty() {
        return Vec::new();
    }
    let by = move |a: &CandidateRun, b: &CandidateRun| cmp(&(a.0, a.2), &(b.0, b.2));
    if k < runs.len() {
        runs.select_nth_unstable_by(k, by);
        runs.truncate(k);
    }
    runs.sort_unstable_by(by);
    let total: u64 = runs.iter().map(|&(_, len, _)| len).sum();
    let mut out = Vec::with_capacity(k.min(total as usize));
    'fill: for (start, len, score) in runs {
        for id in start..start + len {
            out.push((id, score));
            if out.len() == k {
                break 'fill;
            }
        }
    }
    out
}

/// Run-granular [`hot_pages_top_k`]: identical output, O(runs) selection.
pub fn expand_hot_runs_top_k(runs: Vec<CandidateRun>, k: usize) -> Vec<(PageId, f64)> {
    expand_runs(runs, k, hotter)
}

/// Run-granular [`cold_pages_top_k`]: identical output, O(runs) selection.
pub fn expand_cold_runs_top_k(runs: Vec<CandidateRun>, k: usize) -> Vec<(PageId, f64)> {
    expand_runs(runs, k, colder)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_hot(mut items: Vec<(PageId, f64)>, k: usize) -> Vec<(PageId, f64)> {
        // The pattern the helper replaced: id-ordered input, stable full
        // sort by score, truncate.
        items.sort_by(|a, b| b.1.total_cmp(&a.1));
        items.truncate(k);
        items
    }

    fn baseline_cold(mut items: Vec<(PageId, f64)>, k: usize) -> Vec<(PageId, f64)> {
        items.sort_by(|a, b| a.1.total_cmp(&b.1));
        items.truncate(k);
        items
    }

    fn pseudo_items(n: u64, dup_every: u64) -> Vec<(PageId, f64)> {
        (0..n)
            .map(|id| {
                let mut z = id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                let score = if dup_every > 0 && id % dup_every == 0 {
                    0.25 // forced ties
                } else {
                    (z % 10_000) as f64 / 10_000.0
                };
                (id, score)
            })
            .collect()
    }

    #[test]
    fn matches_stable_sort_including_ties() {
        for n in [0u64, 1, 7, 100, 1000] {
            for k in [0usize, 1, 3, 50, 2000] {
                let items = pseudo_items(n, 5);
                assert_eq!(
                    hot_pages_top_k(items.clone(), k),
                    baseline_hot(items.clone(), k),
                    "hot n={n} k={k}"
                );
                assert_eq!(
                    cold_pages_top_k(items.clone(), k),
                    baseline_cold(items, k),
                    "cold n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn nan_scores_do_not_panic_and_order_deterministically() {
        let mut items = pseudo_items(64, 0);
        items[10].1 = f64::NAN;
        items[40].1 = f64::NAN;
        let a = hot_pages_top_k(items.clone(), 16);
        let b = hot_pages_top_k(items, 16);
        // total_cmp gives NaN a definite rank; repeated runs agree.
        // (NaN != NaN, so compare ids and score bit patterns, not floats.)
        assert_eq!(a.len(), 16);
        let bits = |v: &[(PageId, f64)]| -> Vec<(PageId, u64)> {
            v.iter().map(|&(id, s)| (id, s.to_bits())).collect()
        };
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn run_expansion_matches_per_page_selection() {
        // Random run lengths with forced score ties across runs.
        let mut runs: Vec<CandidateRun> = Vec::new();
        let mut next_id = 0u64;
        for i in 0..200u64 {
            let mut z = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            let len = 1 + z % 7;
            let score = if i % 4 == 0 {
                0.25
            } else {
                (z % 1000) as f64 / 1000.0
            };
            runs.push((next_id, len, score));
            next_id += len + z % 2; // occasional gaps, as filters produce
        }
        let pages: Vec<(PageId, f64)> = runs
            .iter()
            .flat_map(|&(s, l, sc)| (s..s + l).map(move |id| (id, sc)))
            .collect();
        for k in [0usize, 1, 5, 100, 500, 5000] {
            assert_eq!(
                expand_hot_runs_top_k(runs.clone(), k),
                hot_pages_top_k(pages.clone(), k),
                "hot k={k}"
            );
            assert_eq!(
                expand_cold_runs_top_k(runs.clone(), k),
                cold_pages_top_k(pages.clone(), k),
                "cold k={k}"
            );
        }
    }

    #[test]
    fn k_larger_than_input_sorts_everything() {
        let items = pseudo_items(10, 3);
        let out = hot_pages_top_k(items.clone(), usize::MAX);
        assert_eq!(out, baseline_hot(items, 10));
    }
}
