//! The emulated heterogeneous memory system: allocation, placement,
//! migration with capacity management, and page-level profiling state.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::config::{HmConfig, Tier};
use crate::epoch::{EpochOutcome, EpochState};
use crate::fault::{FaultInjector, FaultPlan, FaultStats};
use crate::object::{DataObject, ObjectId, ObjectSpec};
use crate::page::{page_weights, PageId, PageTable, PAGE_SIZE};

/// Error type for system operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HmError {
    /// The requested tier lacks capacity for the allocation/migration.
    OutOfCapacity {
        /// Tier that overflowed.
        tier: Tier,
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// Unknown object name.
    NoSuchObject(String),
    /// A page migration kept failing after exhausting its retry budget.
    MigrationFailed {
        /// The page that could not be moved.
        page: PageId,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A configuration value is out of its legal domain.
    InvalidConfig(String),
    /// An [`ObjectId`] that does not name an allocated object reached a
    /// lookup (stale handle, profile from a different run).
    UnknownObject(ObjectId),
    /// The scripted crash fault fired: the process hosting the runtime
    /// died during `round`. Continue via `Executor::resume`.
    Crashed {
        /// Round the crash struck in.
        round: u64,
    },
    /// A checkpoint record failed validation (bad header, checksum
    /// mismatch, or malformed payload).
    CheckpointCorrupt(String),
    /// Checkpoint I/O kept failing after exhausting its retry budget.
    CheckpointIo(String),
}

impl std::fmt::Display for HmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HmError::OutOfCapacity {
                tier,
                requested,
                available,
            } => write!(
                f,
                "out of {tier} capacity: requested {requested} B, available {available} B"
            ),
            HmError::NoSuchObject(n) => write!(f, "no such object: {n}"),
            HmError::MigrationFailed { page, attempts } => {
                write!(
                    f,
                    "migration of page {page} failed after {attempts} attempts"
                )
            }
            HmError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            HmError::UnknownObject(id) => write!(f, "unknown object id: {}", id.0),
            HmError::Crashed { round } => {
                write!(f, "scripted crash fired during round {round}")
            }
            HmError::CheckpointCorrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            HmError::CheckpointIo(msg) => write!(f, "checkpoint I/O failed: {msg}"),
        }
    }
}

impl std::error::Error for HmError {}

/// Outcome of one migration request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MigrationOutcome {
    /// Pages actually moved toward the requested tier.
    pub pages_moved: u64,
    /// Pages evicted from DRAM to make room (least-frequently-accessed
    /// eviction, §6 "DRAM space management").
    pub pages_evicted: u64,
    /// Pages abandoned after their migration attempts kept failing
    /// (injected faults; zero without a fault plan).
    pub pages_failed: u64,
}

/// The emulated HM system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HmSystem {
    /// Configuration (tier parameters, caching model).
    pub config: HmConfig,
    page_table: PageTable,
    objects: Vec<DataObject>,
    by_name: BTreeMap<String, ObjectId>,
    /// Cumulative pages migrated (both directions), for overhead accounting.
    pub total_migrations: u64,
    /// Cumulative migration *attempts* including failed ones. Equals
    /// `total_migrations` when no faults are injected; the runtime charges
    /// migration overhead by attempts so retries cost wall time.
    pub total_migration_attempts: u64,
    /// Cumulative simulated backoff delay (ns) spent between migration
    /// retry attempts (zero without injected failures).
    pub total_backoff_ns: f64,
    /// Migration epochs that ended with their moves kept.
    pub epoch_commits: u64,
    /// Migration epochs that ended torn and were rolled back.
    pub epoch_rollbacks: u64,
    seed: u64,
    fault: Option<FaultInjector>,
    /// Service-imposed cap on DRAM bytes this system may hold resident.
    /// `None` (the default) leaves the configured tier capacity as the only
    /// limit. The multi-tenant service sets this at admission time so one
    /// tenant can never spill into a co-tenant's share of the pool.
    dram_quota: Option<u64>,
    /// Co-tenant pressure reservation for the current round, read from the
    /// fault injector exactly once per round boundary. Quota math, the
    /// eviction budget, and [`free_bytes`](Self::free_bytes) all consume
    /// this one cached value, so they can never disagree mid-round.
    round_pressure: u64,
    /// DRAM bytes permanently offlined (a DIMM/rank died). Persistent and
    /// monotone: unlike pressure, offlined capacity never comes back.
    offlined_bytes: u64,
    /// Device degradation active this round (`(tier, latency multiplier,
    /// bandwidth multiplier)`), hoisted from the injector once per round
    /// boundary like `round_pressure`. Transient: recomputed by
    /// `begin_round` (and on restore), pure in (plan, round).
    degrade: Option<(Tier, f64, f64)>,
    /// Did the degradation window open or close at this round's boundary?
    /// Pure in (plan, round) — never stateful history, so crash-resume
    /// replays window edges bit-identically.
    degrade_shifted: bool,
    /// In-flight transactional migration epoch, if one is open.
    epoch: Option<EpochState>,
    /// WAL-framed intent journal of the most recently ended epoch.
    last_epoch_journal: String,
}

impl HmSystem {
    /// Create a system with the given configuration. `seed` drives the
    /// deterministic page-weight assignment for skewed objects.
    pub fn new(config: HmConfig, seed: u64) -> Self {
        Self {
            config,
            page_table: PageTable::default(),
            objects: Vec::new(),
            by_name: BTreeMap::new(),
            total_migrations: 0,
            total_migration_attempts: 0,
            total_backoff_ns: 0.0,
            epoch_commits: 0,
            epoch_rollbacks: 0,
            seed,
            fault: None,
            dram_quota: None,
            round_pressure: 0,
            offlined_bytes: 0,
            degrade: None,
            degrade_shifted: false,
            epoch: None,
            last_epoch_journal: String::new(),
        }
    }

    /// The page-weight seed this system was created with (also keys the
    /// deterministic jitter of checkpoint-write retries).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Arm fault injection for this system. A [`FaultPlan::none`] plan
    /// removes the injector entirely, restoring the exact no-fault code
    /// path. Returns `InvalidConfig` for out-of-domain rates.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), HmError> {
        plan.validate()?;
        self.fault = if plan.is_none() {
            None
        } else {
            Some(FaultInjector::new(plan))
        };
        self.round_pressure = self.fault.as_ref().map_or(0, |f| f.current_pressure());
        Ok(())
    }

    /// Cap the DRAM bytes this system may hold resident (`None` removes the
    /// cap). Enforced at allocation and migration time via
    /// [`free_bytes`](Self::free_bytes) and at round boundaries via
    /// [`begin_round`](Self::begin_round), which evicts LFU overflow when a
    /// quota shrinks below current residency (the service "squeeze" path).
    pub fn set_dram_quota(&mut self, quota: Option<u64>) {
        self.dram_quota = quota;
    }

    /// The service-imposed DRAM quota, if one is set.
    pub fn dram_quota(&self) -> Option<u64> {
        self.dram_quota
    }

    /// DRAM capacity physically present: the configured capacity minus
    /// permanently offlined bytes minus frames dead to ECC poisoning. Each
    /// subtraction saturates, so over-shrinking floors at zero instead of
    /// wrapping.
    pub fn physical_dram_capacity(&self) -> u64 {
        self.config
            .dram
            .capacity
            .saturating_sub(self.offlined_bytes)
            .saturating_sub(self.page_table.quarantine_bytes())
    }

    /// DRAM capacity actually available this round. The shrink ordering is
    /// load-bearing: physical losses first (offlining, poisoned frames —
    /// those bytes do not exist), then the service quota caps what is left
    /// (a quota can never grant dead capacity), then the round's co-tenant
    /// pressure reservation subtracts last, saturating at zero.
    pub fn effective_dram_capacity(&self) -> u64 {
        let mut cap = self.physical_dram_capacity();
        if let Some(q) = self.dram_quota {
            cap = cap.min(q);
        }
        cap.saturating_sub(self.round_pressure)
    }

    /// DRAM bytes permanently offlined so far.
    pub fn offlined_dram_bytes(&self) -> u64 {
        self.offlined_bytes
    }

    /// Permanently remove `bytes` of DRAM capacity (the OS offlined a
    /// DIMM/rank after an error storm). Monotone and irreversible; the
    /// cumulative offlined total is clamped to the configured capacity.
    /// Overflowing residency is evicted at the next round boundary.
    pub fn offline_dram(&mut self, bytes: u64) {
        self.offlined_bytes = self
            .offlined_bytes
            .saturating_add(bytes)
            .min(self.config.dram.capacity);
    }

    /// The device degradation active this round, if any: `(tier, latency
    /// multiplier, bandwidth multiplier)`.
    pub fn degradation(&self) -> Option<(Tier, f64, f64)> {
        self.degrade
    }

    /// Did the degradation window open or close at this round's boundary?
    pub fn degradation_shifted(&self) -> bool {
        self.degrade_shifted
    }

    /// The tier configuration tasks actually execute under this round: the
    /// base configuration with the active degradation window applied.
    /// Without an open window this is a bitwise-identical clone, keeping
    /// the no-fault path byte-for-byte unchanged.
    pub fn active_config(&self) -> HmConfig {
        match self.degrade {
            Some((tier, lat, bw)) => self.config.degraded(tier, lat, bw),
            None => self.config.clone(),
        }
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| f.plan())
    }

    /// Fault statistics accumulated so far (zero when no plan is armed).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault.as_ref().map(|f| f.stats()).unwrap_or_default()
    }

    /// Mutable access to the injector for profilers (sample-dropout draws).
    pub fn fault_injector_mut(&mut self) -> Option<&mut FaultInjector> {
        self.fault.as_mut()
    }

    /// Shared access to the injector (checkpoint serialization).
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.fault.as_ref()
    }

    /// Has the scripted crash fault fired?
    pub fn crashed(&self) -> bool {
        self.fault.as_ref().is_some_and(|f| f.crashed())
    }

    /// Does the scripted crash strike at the boundary before `round`?
    /// Latches [`crashed`](Self::crashed) when it does.
    pub fn crash_at_round_start(&mut self, round: u64) -> bool {
        self.fault
            .as_mut()
            .is_some_and(|f| f.crash_at_round_start(round))
    }

    /// Disarm the scripted crash after recovery so the resumed run does
    /// not die at the same point again.
    pub fn disarm_crash(&mut self) {
        if let Some(f) = self.fault.as_mut() {
            f.disarm_crash();
        }
    }

    /// Is a scripted tenant panic due at the boundary before `round`?
    /// Pure and non-latching (see `FaultInjector::panic_due`).
    pub fn panic_due(&self, round: u64) -> bool {
        self.fault.as_ref().is_some_and(|f| f.panic_due(round))
    }

    /// Record a scripted tenant panic about to fire.
    pub fn note_tenant_panic(&mut self) {
        if let Some(f) = self.fault.as_mut() {
            f.note_tenant_panic();
        }
    }

    /// Wall-time multiplier for `round` under an open tenant-stall window
    /// (1 when none is armed or open).
    pub fn stall_multiplier(&self, round: u64) -> f64 {
        self.fault
            .as_ref()
            .map_or(1.0, |f| f.stall_multiplier(round))
    }

    /// Record a round executed inside an open tenant-stall window.
    pub fn note_stalled_round(&mut self) {
        if let Some(f) = self.fault.as_mut() {
            f.note_stalled_round();
        }
    }

    /// Start round `round`: advance the injector's clock, hoist the round's
    /// co-tenant pressure into the cached round context, land the round's
    /// device faults (degradation window state, newly due offlining, ECC
    /// poison strike), and evict LFU pages until DRAM residency fits the
    /// effective budget (physical losses, quota and pressure combined).
    /// Returns pages evicted (charged as migration overhead by the caller
    /// via `total_migration_attempts`).
    pub fn begin_round(&mut self, round: u64) -> u64 {
        if let Some(fault) = self.fault.as_mut() {
            fault.begin_round(round);
        }
        // One pressure read per round: quota math, the eviction budget
        // below, and every `free_bytes` call this round share this value.
        self.round_pressure = self.fault.as_ref().map_or(0, |f| f.current_pressure());
        // Device faults land before the epoch opens, so quarantine and
        // offlining are stable for the whole round and never part of a
        // rollback.
        self.advance_device_clock(round);
        if self.round_pressure == 0
            && self.dram_quota.is_none()
            && self.offlined_bytes == 0
            && self.page_table.quarantined_count() == 0
        {
            return 0;
        }
        let budget = self.effective_dram_capacity();
        let used = self.page_table.bytes_in(Tier::Dram);
        let overflow_pages = used.saturating_sub(budget).div_ceil(PAGE_SIZE);
        if overflow_pages == 0 {
            return 0;
        }
        let evicted = self.evict_lfu_dram_pages(overflow_pages, None);
        if self.round_pressure > 0 {
            if let Some(fault) = self.fault.as_mut() {
                fault.note_pressure_evictions(evicted);
            }
        }
        evicted
    }

    /// Advance the device-fault clock at the `round` boundary: refresh the
    /// degradation-window state, apply newly due capacity offlining, and
    /// land this round's ECC-UE poison strike (if any) on a DRAM-resident
    /// victim. Every decision is pure in (plan, round, placement), so
    /// replays and crash-resumes are bit-identical.
    fn advance_device_clock(&mut self, round: u64) {
        let (now, prev) = match self.fault.as_ref() {
            Some(f) => (
                f.current_degradation(round),
                if round == 0 {
                    None
                } else {
                    f.current_degradation(round - 1)
                },
            ),
            None => {
                self.degrade = None;
                self.degrade_shifted = false;
                return;
            }
        };
        self.degrade = now;
        self.degrade_shifted = now != prev;
        if now.is_some() {
            if let Some(f) = self.fault.as_mut() {
                f.note_window_round();
            }
        }
        // Capacity offlining: monotone in the round, applied as the
        // difference against what is already offline — idempotent across
        // checkpoint/resume.
        let due = self
            .fault
            .as_ref()
            .map_or(0, |f| f.offline_due(round))
            .min(self.config.dram.capacity);
        if due > self.offlined_bytes {
            let newly = due - self.offlined_bytes;
            self.offlined_bytes = due;
            if let Some(f) = self.fault.as_mut() {
                f.note_offlined(newly);
            }
        }
        // Poison strike: at most one DRAM-resident frame per round, the
        // victim drawn over the residents in ascending page-id order.
        if self.fault.as_ref().is_some_and(|f| f.poison_strikes(round)) {
            // The victim draw is over DRAM residents in ascending page-id
            // order; an O(runs) order-statistic walk finds the idx-th
            // resident without materializing the resident list.
            let residents = self.page_table.pages_in(Tier::Dram);
            if residents > 0 {
                let idx = self
                    .fault
                    .as_ref()
                    .map_or(0, |f| f.poison_victim_index(round, residents));
                let victim = self
                    .page_table
                    .nth_page_in_tier(Tier::Dram, idx)
                    .expect("resident count covers idx");
                self.poison_page(victim);
            }
        }
    }

    /// Poison page `victim`: quarantine it (its DRAM frame is dead and the
    /// page may never reside on DRAM again), remap it to PM, and charge the
    /// remap as one migration attempt so the ECC repair cost lands in this
    /// round's migration overhead. Idempotent for an already-quarantined
    /// page.
    pub fn poison_page(&mut self, victim: PageId) {
        if !self.page_table.quarantine_page(victim) {
            return;
        }
        if self.page_table.get(victim).tier() == Tier::Dram {
            self.page_table.set_tier(victim, Tier::Pm);
            self.page_table.bump_migrations(victim);
            self.total_migrations += 1;
            self.total_migration_attempts += 1;
            self.page_table.flush_aggregates();
        }
        if let Some(f) = self.fault.as_mut() {
            f.note_poisoned_page();
        }
    }

    /// Open a transactional migration epoch for `round`. Until
    /// [`end_epoch`](Self::end_epoch), every page move journals its intent
    /// and (on first touch) the page's pre-epoch `(tier, migrations)` into
    /// an undo map.
    pub fn begin_epoch(&mut self, round: u64) {
        self.epoch = Some(EpochState::new(round));
    }

    /// Close the open epoch. The epoch is *torn* when the scripted crash
    /// latched inside it or a `MigrationFailed` burst abandoned more pages
    /// than it moved; a torn epoch rolls every touched page back to its
    /// pre-epoch state (bitwise-identical page table, aggregates
    /// re-flushed) and counts a rollback. A clean epoch that touched pages
    /// commits; one that touched nothing is [`EpochOutcome::Clean`].
    /// Physical history (attempt counters, backoff, fault statistics) is
    /// never rewound — those costs were really paid.
    pub fn end_epoch(&mut self) -> EpochOutcome {
        let Some(ep) = self.epoch.take() else {
            return EpochOutcome::Clean;
        };
        let torn = self.crashed() || ep.pages_failed > ep.pages_moved;
        let outcome = if torn {
            for (&page, &(tier, migrations)) in ep.undo.iter() {
                // A torn epoch must never resurrect a poisoned frame:
                // quarantine is monotone state outside the transaction, so
                // a quarantined page stays pinned to PM regardless of the
                // tier its undo entry recorded.
                let tier = if self.page_table.is_quarantined(page) {
                    Tier::Pm
                } else {
                    tier
                };
                self.page_table.set_tier(page, tier);
                self.page_table.set_migrations(page, migrations);
            }
            self.page_table.flush_aggregates();
            self.epoch_rollbacks += 1;
            EpochOutcome::RolledBack
        } else if ep.undo.is_empty() {
            EpochOutcome::Clean
        } else {
            self.epoch_commits += 1;
            EpochOutcome::Committed
        };
        self.last_epoch_journal = ep.journal(outcome);
        outcome
    }

    /// The WAL-framed intent journal of the most recently ended epoch
    /// (empty before the first epoch ends).
    pub fn last_epoch_journal(&self) -> &str {
        &self.last_epoch_journal
    }

    /// Journal a migration intent into the open epoch, if any.
    fn journal_intent(&mut self, id: PageId, to: Tier) {
        if let Some(epoch) = self.epoch.as_mut() {
            let p = self.page_table.get(id);
            epoch.note_intent(id, p.tier(), to, p.migrations);
        }
    }

    /// Allocate an object on `tier` (software solutions allocate on PM and
    /// migrate up; DRAM-only allocates on DRAM).
    pub fn allocate(&mut self, spec: &ObjectSpec, tier: Tier) -> Result<ObjectId, HmError> {
        let num_pages = spec.size.div_ceil(PAGE_SIZE).max(1);
        let bytes = num_pages * PAGE_SIZE;
        let available = self.free_bytes(tier);
        if bytes > available {
            return Err(HmError::OutOfCapacity {
                tier,
                requested: bytes,
                available,
            });
        }
        let id = ObjectId(self.objects.len() as u32);
        let weights = page_weights(
            num_pages,
            spec.hot_page_skew,
            self.seed ^ (id.0 as u64) << 17,
        );
        let first_page = self.page_table.extend_for_object(id, tier, weights);
        self.objects.push(DataObject {
            id,
            name: spec.name.clone(),
            size: spec.size,
            first_page,
            num_pages,
            owner_task: spec.owner_task,
        });
        self.by_name.insert(spec.name.clone(), id);
        Ok(id)
    }

    /// Allocate a full workload object list on `tier`.
    pub fn allocate_all(
        &mut self,
        specs: &[ObjectSpec],
        tier: Tier,
    ) -> Result<Vec<ObjectId>, HmError> {
        specs.iter().map(|s| self.allocate(s, tier)).collect()
    }

    /// Object metadata by id. Panics on a stale id; policy-reachable code
    /// should use [`try_object`](Self::try_object) instead.
    pub fn object(&self, id: ObjectId) -> &DataObject {
        &self.objects[id.0 as usize]
    }

    /// Fallible object lookup: `Err(HmError::UnknownObject)` for an id
    /// that no allocation produced (stale handle, foreign profile).
    pub fn try_object(&self, id: ObjectId) -> Result<&DataObject, HmError> {
        self.objects
            .get(id.0 as usize)
            .ok_or(HmError::UnknownObject(id))
    }

    /// Object id by name.
    pub fn object_by_name(&self, name: &str) -> Result<ObjectId, HmError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| HmError::NoSuchObject(name.to_string()))
    }

    /// All objects.
    pub fn objects(&self) -> &[DataObject] {
        &self.objects
    }

    /// The page table (profilers scan this).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Mutable page table access for profilers (resetting accessed bits).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// Free bytes on `tier`. DRAM capacity shrinks by the service quota
    /// (when set) and by the round's cached co-tenant pressure reservation
    /// — the same [`effective_dram_capacity`](Self::effective_dram_capacity)
    /// the round-boundary eviction budget uses, so the two never disagree
    /// mid-round.
    pub fn free_bytes(&self, tier: Tier) -> u64 {
        let cap = match tier {
            Tier::Dram => self.effective_dram_capacity(),
            Tier::Pm => self.config.pm.capacity,
        };
        cap.saturating_sub(self.page_table.bytes_in(tier))
    }

    /// Weighted fraction of `object`'s accesses served from `tier` under the
    /// current placement.
    pub fn dram_fraction(&self, object: ObjectId) -> f64 {
        let Ok(o) = self.try_object(object) else {
            return 0.0;
        };
        self.page_table.weighted_fraction_in(o.pages(), Tier::Dram)
    }

    /// Record `accesses` object-level accesses against `object`'s pages
    /// (sets accessed bits, bumps counters). A stale id records nothing.
    pub fn record_accesses(&mut self, object: ObjectId, accesses: f64) {
        let Ok(o) = self.try_object(object) else {
            return;
        };
        let range = o.pages();
        self.page_table.record_accesses(range, accesses);
    }

    /// Migrate up to `max_pages` of `object`'s pages to `to`, hottest-first
    /// (by page weight — the access distribution a perfect profiler would
    /// see). If DRAM is full, evict the least-frequently-accessed DRAM
    /// pages to PM first (§6 "DRAM space management"). Returns how many
    /// pages moved.
    pub fn migrate_object_pages(
        &mut self,
        object: ObjectId,
        to: Tier,
        max_pages: u64,
    ) -> MigrationOutcome {
        let Ok(o) = self.try_object(object) else {
            return MigrationOutcome::default();
        };
        let range = o.pages();
        // Candidates at run granularity: one entry per extent not already
        // on `to`, scored by page weight (uniform within an extent).
        let candidates: Vec<crate::topk::CandidateRun> = self
            .page_table
            .runs_in(range)
            .filter(|r| r.info.tier() != to)
            .map(|r| (r.start, r.len, r.info.weight()))
            .collect();
        // Hottest first when promoting to DRAM; coldest first when demoting.
        // total_cmp: page weights are runtime data, a NaN must not panic.
        let candidates = match to {
            Tier::Dram => crate::topk::expand_hot_runs_top_k(candidates, max_pages as usize),
            Tier::Pm => crate::topk::expand_cold_runs_top_k(candidates, max_pages as usize),
        };
        self.migrate_pages(candidates.iter().map(|&(id, _)| id), to)
    }

    /// Migrate an explicit page list to `to`, evicting LFU DRAM pages when
    /// promoting into a full DRAM.
    ///
    /// With a fault plan armed, each page move may take several attempts
    /// (all charged to `total_migration_attempts`); a page that still
    /// fails after the retry budget is abandoned for this request and
    /// counted in `pages_failed`.
    pub fn migrate_pages(
        &mut self,
        pages: impl IntoIterator<Item = PageId>,
        to: Tier,
    ) -> MigrationOutcome {
        let mut outcome = MigrationOutcome::default();
        if self.fault.is_none() {
            // Fault-free fast path: fold maximal ascending-contiguous id
            // groups out of the stream and apply each as extent
            // splits/merges. Group boundaries preserve the stream's
            // processing order, so counters, journal entries and final
            // placement are bitwise what the per-page loop produces.
            let mut cur: Option<(PageId, PageId)> = None;
            let mut ok = true;
            for id in pages {
                match &mut cur {
                    Some((_, b)) if *b == id => *b += 1,
                    _ => {
                        if let Some((a, b)) = cur.take() {
                            ok = self.migrate_contiguous(a..b, to, &mut outcome);
                            if !ok {
                                break;
                            }
                        }
                        cur = Some((id, id + 1));
                    }
                }
            }
            if ok {
                if let Some((a, b)) = cur.take() {
                    self.migrate_contiguous(a..b, to, &mut outcome);
                }
            }
        } else {
            // Fault plan armed: retries, scripted crashes and failure
            // draws are strictly per-page state machines — keep the
            // original loop verbatim.
            for id in pages {
                if !self.migrate_one(id, to, &mut outcome) {
                    break;
                }
            }
        }
        self.page_table.flush_aggregates();
        // Debug builds re-verify the extent structure after every batch;
        // release builds pay nothing (the no-O(pages)-on-hot-paths rule).
        self.page_table.debug_verify();
        outcome
    }

    /// One iteration of the per-page migration loop. Returns `false` when
    /// the batch must stop (nothing evictable, or a scripted crash).
    fn migrate_one(&mut self, id: PageId, to: Tier, outcome: &mut MigrationOutcome) -> bool {
        if self.page_table.get(id).tier() == to {
            return true;
        }
        // A quarantined page is permanently pinned off DRAM; its
        // promotion is silently filtered rather than failed — failures
        // tear migration epochs, and a dead frame is not a transient
        // fault the epoch could undo.
        if to == Tier::Dram && self.page_table.is_quarantined(id) {
            return true;
        }
        if to == Tier::Dram && self.free_bytes(Tier::Dram) < PAGE_SIZE {
            let evicted = self.evict_lfu_inner(1, Some(id));
            outcome.pages_evicted += evicted;
            if self.free_bytes(Tier::Dram) < PAGE_SIZE {
                return false; // nothing evictable; stop migrating
            }
        }
        match self.migrate_page_inner(id, to) {
            Ok(()) => outcome.pages_moved += 1,
            Err(HmError::MigrationFailed { .. }) => outcome.pages_failed += 1,
            // Scripted crash: the batch dies mid-flight; the pages not
            // reached stay put and the caller observes `crashed()`.
            Err(HmError::Crashed { .. }) => return false,
            Err(_) => unreachable!("migrate_page_inner fails with MigrationFailed or Crashed"),
        }
        true
    }

    /// Migrate one ascending-contiguous id group as whole extents. Only
    /// callable fault-free; falls back to [`migrate_one`](Self::migrate_one)
    /// when a promotion needs interleaved LFU evictions. Returns `false`
    /// when the whole migration must stop.
    fn migrate_contiguous(
        &mut self,
        range: std::ops::Range<PageId>,
        to: Tier,
        outcome: &mut MigrationOutcome,
    ) -> bool {
        debug_assert!(self.fault.is_none());
        // Segments that actually move: runs not already on `to`, with
        // quarantined pages punched out of promotions (silently skipped,
        // exactly as the per-page loop skips them before journaling).
        let mut segs: Vec<(PageId, u64, Tier, u32)> = Vec::new();
        for r in self.page_table.runs_in(range.clone()) {
            if r.info.tier() == to {
                continue;
            }
            let (from, migrations) = (r.info.tier(), r.info.migrations);
            if to == Tier::Dram {
                let mut lo = r.start;
                for q in self
                    .page_table
                    .quarantined_in_range(r.start..r.end())
                    .collect::<Vec<_>>()
                {
                    if q > lo {
                        segs.push((lo, q - lo, from, migrations));
                    }
                    lo = q + 1;
                }
                if r.end() > lo {
                    segs.push((lo, r.end() - lo, from, migrations));
                }
            } else {
                segs.push((r.start, r.len, from, migrations));
            }
        }
        let moving: u64 = segs.iter().map(|&(_, len, _, _)| len).sum();
        if moving == 0 {
            return true;
        }
        if to == Tier::Dram && self.free_bytes(Tier::Dram) < moving * PAGE_SIZE {
            // The per-page loop would interleave LFU evictions with the
            // moves; that ordering is load-bearing (evictions see the
            // partially-promoted table), so take the slow path.
            for id in range {
                if !self.migrate_one(id, to, outcome) {
                    return false;
                }
            }
            return true;
        }
        for &(start, len, from, migrations) in &segs {
            // Journal per page in ascending order — the order (and the
            // pre-move state) the per-page loop would journal.
            if let Some(ep) = self.epoch.as_mut() {
                for id in start..start + len {
                    ep.note_intent(id, from, to, migrations);
                }
                ep.pages_moved += len;
            }
            self.page_table.set_tier_range(start..start + len, to);
            self.page_table.bump_migrations_range(start..start + len);
            self.total_migrations += len;
            self.total_migration_attempts += len;
            // `total_backoff_ns` is untouched: the first (only) fault-free
            // attempt has zero delay, and adding 0.0 to the non-negative
            // accumulator is a bitwise no-op.
            outcome.pages_moved += len;
        }
        true
    }

    /// Move one page to `to` with bounded retry under fault injection.
    /// Every attempt (failed or not) is charged to
    /// `total_migration_attempts`; without an injector the single attempt
    /// always succeeds.
    pub fn try_migrate_page(&mut self, id: PageId, to: Tier) -> Result<(), HmError> {
        let r = self.migrate_page_inner(id, to);
        self.page_table.flush_aggregates();
        r
    }

    /// [`try_migrate_page`](Self::try_migrate_page) without the aggregate
    /// flush — batched callers flush once after the whole batch.
    fn migrate_page_inner(&mut self, id: PageId, to: Tier) -> Result<(), HmError> {
        // Defense in depth for direct callers: promoting a quarantined
        // page is a silent no-op (batched callers filter earlier and never
        // reach here).
        if to == Tier::Dram && self.page_table.is_quarantined(id) {
            return Ok(());
        }
        self.journal_intent(id, to);
        let max_retries = self.fault.as_ref().map(|f| f.max_retries()).unwrap_or(0);
        let mut backoff = crate::backoff::Backoff::new(max_retries, self.seed ^ id.rotate_left(23));
        loop {
            if let Some(f) = self.fault.as_mut() {
                if f.crash_before_migration_attempt() {
                    return Err(HmError::Crashed { round: f.round() });
                }
            }
            self.total_migration_attempts += 1;
            self.total_backoff_ns += backoff.delay_ns();
            let failed = self
                .fault
                .as_mut()
                .is_some_and(|f| f.migration_attempt_fails(id, backoff.attempt()));
            if !failed {
                self.page_table.set_tier(id, to);
                self.page_table.bump_migrations(id);
                self.total_migrations += 1;
                if let Some(ep) = self.epoch.as_mut() {
                    ep.pages_moved += 1;
                }
                return Ok(());
            }
            if !backoff.retry() {
                if let Some(f) = self.fault.as_mut() {
                    f.note_failed_page();
                }
                if let Some(ep) = self.epoch.as_mut() {
                    ep.pages_failed += 1;
                }
                return Err(HmError::MigrationFailed {
                    page: id,
                    attempts: backoff.attempt(),
                });
            }
        }
    }

    /// Evict `n` least-frequently-accessed DRAM pages to PM ("the least
    /// frequently accessed pages in DRAM are migrated to PM", §6).
    /// `protect` optionally shields one page from eviction.
    pub fn evict_lfu_dram_pages(&mut self, n: u64, protect: Option<PageId>) -> u64 {
        let evicted = self.evict_lfu_inner(n, protect);
        self.page_table.flush_aggregates();
        evicted
    }

    /// [`evict_lfu_dram_pages`](Self::evict_lfu_dram_pages) without the
    /// aggregate flush, for use inside migration batches.
    fn evict_lfu_inner(&mut self, n: u64, protect: Option<PageId>) -> u64 {
        // DRAM-resident candidates at run granularity, splitting the run
        // containing `protect` around it.
        let mut dram_runs: Vec<crate::topk::CandidateRun> = Vec::new();
        for r in self.page_table.runs() {
            if r.info.tier() != Tier::Dram {
                continue;
            }
            let score = r.info.access_count;
            match protect {
                Some(p) if p >= r.start && p < r.end() => {
                    if p > r.start {
                        dram_runs.push((r.start, p - r.start, score));
                    }
                    if p + 1 < r.end() {
                        dram_runs.push((p + 1, r.end() - (p + 1), score));
                    }
                }
                _ => dram_runs.push((r.start, r.len, score)),
            }
        }
        let mut evicted = 0;
        for (id, _) in crate::topk::expand_cold_runs_top_k(dram_runs, n as usize) {
            self.journal_intent(id, Tier::Pm);
            self.page_table.set_tier(id, Tier::Pm);
            self.page_table.bump_migrations(id);
            self.total_migrations += 1;
            self.total_migration_attempts += 1;
            if let Some(ep) = self.epoch.as_mut() {
                ep.pages_moved += 1;
            }
            evicted += 1;
        }
        evicted
    }

    /// Move every page of every object to `tier` (used by the PM-only /
    /// DRAM-only baselines). Ignores capacity errors on purpose: baseline
    /// setup is all-or-nothing and checked by the caller via `free_bytes`.
    pub fn place_everything(&mut self, tier: Tier) {
        self.migrate_pages(0..self.page_table.len() as PageId, tier);
    }

    /// Re-draw the hot-page weight distribution of `object` with a new
    /// seed and skew. Models inputs whose hot entries move between task
    /// instances (e.g. a different sparse matrix every main-loop iteration
    /// in SpGEMM): page *identities* stay, their access shares change.
    pub fn reassign_page_weights(&mut self, object: ObjectId, skew: f64, seed: u64) {
        let Some(o) = self.objects.get(object.0 as usize) else {
            return;
        };
        let weights = crate::page::page_weights(o.num_pages, skew, seed);
        self.page_table.set_weights_range(o.first_page, &weights);
        self.page_table.flush_aggregates();
    }

    /// Update the logical size of `object` for the current input (the
    /// paper: "the data object sizes are known right before task execution
    /// during runtime"). Pages stay allocated at the envelope size; the
    /// logical size drives the caching-effect model and Equation 1.
    pub fn set_logical_size(&mut self, object: ObjectId, size: u64) {
        if let Some(o) = self.objects.get_mut(object.0 as usize) {
            o.size = size;
        }
    }

    /// Multiply every page's access counter by `factor` (hotness aging, as
    /// tiering daemons do when they periodically clear PTE bits).
    pub fn age_access_counts(&mut self, factor: f64) {
        self.page_table.age_access_counts(factor);
    }

    /// Clear all page access counters and accessed bits (between rounds).
    pub fn reset_profiling_counters(&mut self) {
        self.page_table.reset_profiling_counters();
    }

    /// Serialize the full placement state for a checkpoint: configuration,
    /// objects, every page's tier/weight/counters, the migration counters,
    /// and the fault injector (plan + cursors + stats) when armed. Floats
    /// use `{:?}` (shortest round-trip), so decode restores them bit-exact.
    pub fn encode_state(&self, out: &mut String) {
        use std::fmt::Write as _;
        let c = &self.config;
        writeln!(
            out,
            "hmconfig {} {:?} {:?} {:?} {:?}",
            c.llc_bytes,
            c.per_task_bw_cap,
            c.tier_overlap,
            c.page_migration_ns,
            c.migration_parallelism
        )
        .expect("writing to String cannot fail");
        for (tag, t) in [("D", &c.dram), ("P", &c.pm)] {
            writeln!(
                out,
                "tier {tag} {:?} {:?} {:?} {:?} {}",
                t.latency_seq_ns, t.latency_rand_ns, t.read_bw_gbps, t.write_bw_gbps, t.capacity
            )
            .expect("writing to String cannot fail");
        }
        writeln!(
            out,
            "syscounters {} {} {:?} {} {} {}",
            self.total_migrations,
            self.total_migration_attempts,
            self.total_backoff_ns,
            self.seed,
            self.epoch_commits,
            self.epoch_rollbacks
        )
        .expect("writing to String cannot fail");
        let quota = self.dram_quota.map(|q| q as i64).unwrap_or(-1);
        writeln!(out, "dramquota {quota}").expect("writing to String cannot fail");
        writeln!(out, "offlined {}", self.offlined_bytes).expect("writing to String cannot fail");
        writeln!(out, "objects {}", self.objects.len()).expect("writing to String cannot fail");
        for o in &self.objects {
            let owner = o.owner_task.map(|t| t as i64).unwrap_or(-1);
            writeln!(
                out,
                "object {} {} {} {} {} {owner}",
                o.id.0,
                crate::checkpoint::esc(&o.name),
                o.size,
                o.first_page,
                o.num_pages
            )
            .expect("writing to String cannot fail");
        }
        // Format v5: the page table persists as extents — one `x` line per
        // run (`len object tier weight accessed count migrations`; starts
        // are implicit, runs are written in page order). A 1e8-page table
        // with a handful of objects checkpoints in a few hundred bytes.
        writeln!(
            out,
            "extents {} {}",
            self.page_table.num_extents(),
            self.page_table.len()
        )
        .expect("writing to String cannot fail");
        for r in self.page_table.runs() {
            let p = &r.info;
            let tier = if p.tier() == Tier::Dram { "D" } else { "P" };
            writeln!(
                out,
                "x {} {} {tier} {:?} {} {:?} {}",
                r.len,
                p.object.0,
                p.weight(),
                p.accessed as u8,
                p.access_count,
                p.migrations
            )
            .expect("writing to String cannot fail");
        }
        write!(out, "quarantine {}", self.page_table.quarantined_count())
            .expect("writing to String cannot fail");
        for id in self.page_table.quarantined() {
            write!(out, " {id}").expect("writing to String cannot fail");
        }
        writeln!(out).expect("writing to String cannot fail");
        match &self.fault {
            None => writeln!(out, "fault 0").expect("writing to String cannot fail"),
            Some(inj) => {
                writeln!(out, "fault 1").expect("writing to String cannot fail");
                inj.encode_state(out);
            }
        }
    }

    /// Restore a system serialized by [`encode_state`](Self::encode_state).
    pub fn decode_state(r: &mut crate::checkpoint::Reader<'_>) -> Result<Self, HmError> {
        Self::decode_state_versioned(r, crate::checkpoint::CHECKPOINT_VERSION)
    }

    /// Restore a system block written by checkpoint format `version`
    /// (1 ..= [`CHECKPOINT_VERSION`](crate::checkpoint::CHECKPOINT_VERSION)).
    /// The reader has no lookahead, so dispatch is strictly by version:
    /// v1 has 4-token `syscounters` and no epoch counters, `dramquota`
    /// appears in v3, `offlined`/`quarantine` in v4, and v5 replaces the
    /// per-page `pages`/`p` section with `extents`/`x` run lines. One
    /// caveat survives from v4's widened fault lines: a v1–v3 payload with
    /// an *armed* fault injector does not decode (`fault 0` always does).
    pub fn decode_state_versioned(
        r: &mut crate::checkpoint::Reader<'_>,
        version: u32,
    ) -> Result<Self, HmError> {
        use crate::checkpoint::{corrupt, p_bool, p_f64, p_u32, p_u64, p_usize, unesc};
        use crate::config::TierParams;
        let t = r.line("hmconfig", 5)?;
        let (llc_bytes, per_task_bw_cap, tier_overlap, page_migration_ns, migration_parallelism) = (
            p_u64(t[0])?,
            p_f64(t[1])?,
            p_f64(t[2])?,
            p_f64(t[3])?,
            p_f64(t[4])?,
        );
        let mut tier_params = |tag: &str| -> Result<TierParams, HmError> {
            let t = r.line("tier", 6)?;
            if t[0] != tag {
                return Err(corrupt("tier lines out of order"));
            }
            Ok(TierParams {
                latency_seq_ns: p_f64(t[1])?,
                latency_rand_ns: p_f64(t[2])?,
                read_bw_gbps: p_f64(t[3])?,
                write_bw_gbps: p_f64(t[4])?,
                capacity: p_u64(t[5])?,
            })
        };
        let dram = tier_params("D")?;
        let pm = tier_params("P")?;
        let config = HmConfig {
            dram,
            pm,
            llc_bytes,
            per_task_bw_cap,
            tier_overlap,
            page_migration_ns,
            migration_parallelism,
        };
        let t = r.line("syscounters", if version >= 2 { 6 } else { 4 })?;
        let (total_migrations, total_migration_attempts, total_backoff_ns, seed) =
            (p_u64(t[0])?, p_u64(t[1])?, p_f64(t[2])?, p_u64(t[3])?);
        // v2 added the transactional-epoch counters.
        let (epoch_commits, epoch_rollbacks) = if version >= 2 {
            (p_u64(t[4])?, p_u64(t[5])?)
        } else {
            (0, 0)
        };
        // v3 added per-tenant DRAM quotas.
        let dram_quota = if version >= 3 {
            let t = r.line("dramquota", 1)?;
            let quota: i64 = t[0].parse().map_err(|_| corrupt("bad dram quota"))?;
            (quota >= 0).then_some(quota as u64)
        } else {
            None
        };
        // v4 added permanent capacity offlining.
        let offlined_bytes = if version >= 4 {
            let t = r.line("offlined", 1)?;
            p_u64(t[0])?
        } else {
            0
        };
        let t = r.line("objects", 1)?;
        let num_objects = p_usize(t[0])?;
        let mut objects = Vec::with_capacity(num_objects);
        let mut by_name = BTreeMap::new();
        for k in 0..num_objects {
            let t = r.line("object", 6)?;
            let id = ObjectId(p_u32(t[0])?);
            if id.0 as usize != k {
                return Err(corrupt("object ids not dense"));
            }
            let name = unesc(t[1])?;
            let owner: i64 = t[5].parse().map_err(|_| corrupt("bad owner_task"))?;
            by_name.insert(name.clone(), id);
            objects.push(DataObject {
                id,
                name,
                size: p_u64(t[2])?,
                first_page: p_u64(t[3])?,
                num_pages: p_u64(t[4])?,
                owner_task: (owner >= 0).then_some(owner as usize),
            });
        }
        let mut page_table = PageTable::default();
        let num_pages;
        if version >= 5 {
            // v5: extent framing — `extents <runs> <pages>` then one `x`
            // line per run, starts implicit in page order.
            let t = r.line("extents", 2)?;
            let num_runs = p_usize(t[0])?;
            num_pages = p_usize(t[1])?;
            for _ in 0..num_runs {
                let t = r.line("x", 7)?;
                let len = p_u64(t[0])?;
                let tier = match t[2] {
                    "D" => Tier::Dram,
                    "P" => Tier::Pm,
                    _ => return Err(corrupt("bad extent tier")),
                };
                page_table.push_raw_run(
                    len,
                    crate::page::PageInfo::restore(
                        ObjectId(p_u32(t[1])?),
                        tier,
                        p_f64(t[3])?,
                        p_bool(t[4])?,
                        p_f64(t[5])?,
                        p_u32(t[6])?,
                    ),
                );
            }
            if page_table.len() != num_pages {
                return Err(corrupt("extent lengths do not sum to the page count"));
            }
        } else {
            // v1–v4: one `p` line per page.
            let t = r.line("pages", 1)?;
            num_pages = p_usize(t[0])?;
            for _ in 0..num_pages {
                let t = r.line("p", 6)?;
                let tier = match t[1] {
                    "D" => Tier::Dram,
                    "P" => Tier::Pm,
                    _ => return Err(corrupt("bad page tier")),
                };
                page_table.push_raw(crate::page::PageInfo::restore(
                    ObjectId(p_u32(t[0])?),
                    tier,
                    p_f64(t[2])?,
                    p_bool(t[3])?,
                    p_f64(t[4])?,
                    p_u32(t[5])?,
                ));
            }
        }
        page_table.flush_aggregates();
        // v4 added the poisoned-frame quarantine set.
        if version >= 4 {
            let t = r.line("quarantine", 1)?;
            let num_quarantined = p_usize(t[0])?;
            if t.len() != 1 + num_quarantined {
                return Err(corrupt("quarantine id count mismatch"));
            }
            for tok in &t[1..] {
                let id = p_u64(tok)?;
                if id as usize >= num_pages {
                    return Err(corrupt("quarantined page id out of range"));
                }
                page_table.quarantine_page(id);
            }
        }
        let t = r.line("fault", 1)?;
        let fault = if p_bool(t[0])? {
            Some(FaultInjector::decode_state(r)?)
        } else {
            None
        };
        // Re-hoist the restored round's pressure so post-restore quota math
        // matches what the pre-crash run saw mid-round.
        let round_pressure = fault.as_ref().map_or(0, |f| f.current_pressure());
        // Re-hoist the degradation-window state the same way (pure in
        // (plan, round), so this matches what the pre-crash run saw).
        let (degrade, degrade_shifted) = match fault.as_ref() {
            Some(f) => {
                let round = f.round();
                let now = f.current_degradation(round);
                let prev = if round == 0 {
                    None
                } else {
                    f.current_degradation(round - 1)
                };
                (now, now != prev)
            }
            None => (None, false),
        };
        Ok(Self {
            config,
            page_table,
            objects,
            by_name,
            total_migrations,
            total_migration_attempts,
            total_backoff_ns,
            epoch_commits,
            epoch_rollbacks,
            seed,
            fault,
            dram_quota,
            round_pressure,
            offlined_bytes,
            degrade,
            degrade_shifted,
            // Epochs never span a round boundary, so a checkpoint (taken at
            // boundaries only) always restores with no epoch in flight.
            epoch: None,
            last_epoch_journal: String::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_system() -> HmSystem {
        // 16 pages of DRAM, 128 pages of PM.
        HmSystem::new(HmConfig::calibrated(16 * PAGE_SIZE, 128 * PAGE_SIZE), 42)
    }

    #[test]
    fn dram_quota_caps_allocation_and_free_bytes() {
        let mut sys = tiny_system(); // 16 DRAM pages
        sys.set_dram_quota(Some(4 * PAGE_SIZE));
        assert_eq!(sys.free_bytes(Tier::Dram), 4 * PAGE_SIZE);
        assert!(sys
            .allocate(&ObjectSpec::new("big", 5 * PAGE_SIZE), Tier::Dram)
            .is_err());
        sys.allocate(&ObjectSpec::new("a", 4 * PAGE_SIZE), Tier::Dram)
            .unwrap();
        assert_eq!(sys.free_bytes(Tier::Dram), 0);
        // Lifting the quota restores the configured capacity.
        sys.set_dram_quota(None);
        assert_eq!(sys.free_bytes(Tier::Dram), 12 * PAGE_SIZE);
    }

    #[test]
    fn shrinking_quota_squeezes_residency_at_round_start() {
        let mut sys = tiny_system();
        sys.allocate(&ObjectSpec::new("a", 6 * PAGE_SIZE), Tier::Dram)
            .unwrap();
        sys.set_dram_quota(Some(2 * PAGE_SIZE));
        let evicted = sys.begin_round(0);
        assert_eq!(evicted, 4);
        assert_eq!(sys.page_table().bytes_in(Tier::Dram), 2 * PAGE_SIZE);
        // Steady state: the next round has nothing left to evict.
        assert_eq!(sys.begin_round(1), 0);
    }

    #[test]
    fn quota_survives_state_roundtrip() {
        let mut sys = tiny_system();
        sys.set_dram_quota(Some(8 * PAGE_SIZE));
        sys.allocate(&ObjectSpec::new("a", 3 * PAGE_SIZE), Tier::Dram)
            .unwrap();
        let mut text = String::new();
        sys.encode_state(&mut text);
        let mut r = crate::checkpoint::Reader::new(&text);
        let back = HmSystem::decode_state(&mut r).unwrap();
        assert_eq!(back.dram_quota(), Some(8 * PAGE_SIZE));
        assert_eq!(back.free_bytes(Tier::Dram), 5 * PAGE_SIZE);
    }

    #[test]
    fn allocate_and_lookup() {
        let mut sys = tiny_system();
        let id = sys
            .allocate(&ObjectSpec::new("H", 3 * PAGE_SIZE + 1), Tier::Pm)
            .unwrap();
        assert_eq!(sys.object(id).num_pages, 4);
        assert_eq!(sys.object_by_name("H").unwrap(), id);
        assert!(sys.object_by_name("nope").is_err());
        assert_eq!(sys.dram_fraction(id), 0.0);
    }

    #[test]
    fn allocation_respects_capacity() {
        let mut sys = tiny_system();
        let err = sys
            .allocate(&ObjectSpec::new("big", 17 * PAGE_SIZE), Tier::Dram)
            .unwrap_err();
        assert!(matches!(
            err,
            HmError::OutOfCapacity {
                tier: Tier::Dram,
                ..
            }
        ));
    }

    #[test]
    fn migrate_hottest_first() {
        let mut sys = tiny_system();
        let id = sys
            .allocate(
                &ObjectSpec::new("T", 8 * PAGE_SIZE).with_skew(1.5),
                Tier::Pm,
            )
            .unwrap();
        let out = sys.migrate_object_pages(id, Tier::Dram, 2);
        assert_eq!(out.pages_moved, 2);
        // The two hottest pages carry more than 2/8 of the weight.
        assert!(sys.dram_fraction(id) > 0.25);
    }

    #[test]
    fn promotion_evicts_lfu_when_full() {
        let mut sys = tiny_system();
        let a = sys
            .allocate(&ObjectSpec::new("A", 16 * PAGE_SIZE), Tier::Dram)
            .unwrap();
        let b = sys
            .allocate(&ObjectSpec::new("B", PAGE_SIZE), Tier::Pm)
            .unwrap();
        // Mark A's pages as accessed so eviction has counts to compare;
        // page 0 coldest.
        sys.record_accesses(a, 100.0);
        let out = sys.migrate_object_pages(b, Tier::Dram, 1);
        assert_eq!(out.pages_moved, 1);
        assert_eq!(out.pages_evicted, 1);
        assert_eq!(sys.dram_fraction(b), 1.0);
        assert!(sys.dram_fraction(a) < 1.0);
    }

    #[test]
    fn place_everything_moves_all() {
        let mut sys = tiny_system();
        let id = sys
            .allocate(&ObjectSpec::new("X", 4 * PAGE_SIZE), Tier::Pm)
            .unwrap();
        sys.place_everything(Tier::Dram);
        assert_eq!(sys.dram_fraction(id), 1.0);
        sys.place_everything(Tier::Pm);
        assert_eq!(sys.dram_fraction(id), 0.0);
        assert_eq!(sys.total_migrations, 8);
    }

    #[test]
    fn epoch_commits_when_clean() {
        use crate::epoch::{decode_journal, EpochOutcome};
        let mut sys = tiny_system();
        let id = sys
            .allocate(&ObjectSpec::new("X", 4 * PAGE_SIZE), Tier::Pm)
            .unwrap();
        sys.begin_epoch(0);
        assert_eq!(sys.end_epoch(), EpochOutcome::Clean);
        assert_eq!((sys.epoch_commits, sys.epoch_rollbacks), (0, 0));
        sys.begin_epoch(1);
        let out = sys.migrate_object_pages(id, Tier::Dram, 2);
        assert_eq!(out.pages_moved, 2);
        assert_eq!(sys.end_epoch(), EpochOutcome::Committed);
        assert_eq!((sys.epoch_commits, sys.epoch_rollbacks), (1, 0));
        assert!(sys.dram_fraction(id) > 0.0, "committed moves are kept");
        let (round, outcome, intents) = decode_journal(sys.last_epoch_journal()).unwrap();
        assert_eq!(round, 1);
        assert_eq!(outcome, EpochOutcome::Committed);
        assert_eq!(intents.len(), 2);
    }

    #[test]
    fn torn_epoch_rolls_back_bitwise() {
        use crate::epoch::{decode_journal, EpochOutcome};
        use crate::fault::FaultPlan;
        let mut sys = tiny_system();
        let id = sys
            .allocate(
                &ObjectSpec::new("X", 8 * PAGE_SIZE).with_skew(1.2),
                Tier::Pm,
            )
            .unwrap();
        sys.migrate_object_pages(id, Tier::Dram, 3);
        let before = format!("{:?}", sys.page_table());
        sys.begin_epoch(4);
        // One move succeeds, then a failure burst abandons more pages than
        // the epoch managed to move: the epoch is torn.
        let ok = sys.migrate_object_pages(id, Tier::Dram, 1);
        assert_eq!(ok.pages_moved, 1);
        sys.set_fault_plan(
            FaultPlan::none()
                .with_seed(2)
                .with_migration_failures(1.0, 1),
        )
        .unwrap();
        let burst = sys.migrate_object_pages(id, Tier::Dram, 2);
        assert_eq!(burst.pages_moved, 0);
        assert_eq!(burst.pages_failed, 2);
        assert_eq!(sys.end_epoch(), EpochOutcome::RolledBack);
        assert_eq!((sys.epoch_commits, sys.epoch_rollbacks), (0, 1));
        // The page table is bitwise identical to the pre-epoch snapshot;
        // the successful move inside the torn epoch was undone too.
        assert_eq!(format!("{:?}", sys.page_table()), before);
        assert!(sys.page_table().aggregates_clean());
        // Physical history stays charged.
        assert!(sys.total_migration_attempts > 4);
        let (round, outcome, intents) = decode_journal(sys.last_epoch_journal()).unwrap();
        assert_eq!(round, 4);
        assert_eq!(outcome, EpochOutcome::RolledBack);
        assert_eq!(intents.len(), 3);
    }

    #[test]
    fn poisoned_page_is_pinned_off_dram_and_shrinks_physical_capacity() {
        let mut sys = tiny_system();
        let id = sys
            .allocate(&ObjectSpec::new("X", 4 * PAGE_SIZE), Tier::Dram)
            .unwrap();
        sys.poison_page(1);
        assert!(sys.page_table().is_quarantined(1));
        assert_eq!(sys.page_table().get(1).tier(), Tier::Pm);
        assert_eq!(sys.physical_dram_capacity(), 15 * PAGE_SIZE);
        // The repair remap was charged as migration overhead.
        assert_eq!(sys.total_migration_attempts, 1);
        // Double-poisoning is a no-op.
        sys.poison_page(1);
        assert_eq!(sys.total_migration_attempts, 1);
        // Promotion back is silently filtered, not failed.
        let out = sys.migrate_pages([1u64], Tier::Dram);
        assert_eq!((out.pages_moved, out.pages_failed), (0, 0));
        assert_eq!(sys.page_table().get(1).tier(), Tier::Pm);
        let out = sys.migrate_object_pages(id, Tier::Dram, 4);
        assert_eq!(out.pages_moved, 0);
        assert_eq!(sys.page_table().get(1).tier(), Tier::Pm);
        // Direct single-page promotion is a silent no-op too.
        sys.try_migrate_page(1, Tier::Dram).unwrap();
        assert_eq!(sys.page_table().get(1).tier(), Tier::Pm);
    }

    #[test]
    fn torn_epoch_never_resurrects_a_poisoned_frame() {
        use crate::epoch::EpochOutcome;
        use crate::fault::FaultPlan;
        let mut sys = tiny_system();
        sys.allocate(&ObjectSpec::new("X", 4 * PAGE_SIZE), Tier::Dram)
            .unwrap();
        sys.begin_epoch(0);
        // Demote page 2 inside the epoch (undo records tier = DRAM), then
        // the strike lands on its frame while the epoch is open.
        let moved = sys.migrate_pages([2u64], Tier::Pm);
        assert_eq!(moved.pages_moved, 1);
        sys.poison_page(2);
        // Tear the epoch: a failure burst abandons more pages than moved.
        sys.set_fault_plan(
            FaultPlan::none()
                .with_seed(1)
                .with_migration_failures(1.0, 1),
        )
        .unwrap();
        let burst = sys.migrate_pages([0u64, 1u64], Tier::Pm);
        assert_eq!(burst.pages_failed, 2);
        assert_eq!(sys.end_epoch(), EpochOutcome::RolledBack);
        // Rollback restored pages 0/1 but must not resurrect page 2's dead
        // frame: its undo entry said DRAM, quarantine pins it to PM.
        assert_eq!(sys.page_table().get(0).tier(), Tier::Dram);
        assert_eq!(sys.page_table().get(2).tier(), Tier::Pm);
        assert!(sys.page_table().is_quarantined(2));
        assert!(sys.page_table().aggregates_clean());
    }

    #[test]
    fn combined_capacity_shrink_ordering_never_underflows() {
        use crate::fault::FaultPlan;
        let mut sys = tiny_system(); // 16 DRAM pages
        sys.allocate(&ObjectSpec::new("a", 4 * PAGE_SIZE), Tier::Dram)
            .unwrap();
        sys.offline_dram(8 * PAGE_SIZE);
        sys.poison_page(0);
        // Physical losses first: 16 − 8 offlined − 1 poisoned frame.
        assert_eq!(sys.physical_dram_capacity(), 7 * PAGE_SIZE);
        // The quota caps what is left — a quota above physical is inert…
        sys.set_dram_quota(Some(10 * PAGE_SIZE));
        assert_eq!(sys.effective_dram_capacity(), 7 * PAGE_SIZE);
        // …and one below physical bites.
        sys.set_dram_quota(Some(5 * PAGE_SIZE));
        assert_eq!(sys.effective_dram_capacity(), 5 * PAGE_SIZE);
        // Pressure subtracts last and saturates instead of wrapping.
        sys.set_fault_plan(FaultPlan::none().with_dram_pressure(6 * PAGE_SIZE, 0))
            .unwrap();
        assert_eq!(sys.effective_dram_capacity(), 0);
        assert_eq!(sys.free_bytes(Tier::Dram), 0);
        sys.set_dram_quota(None);
        assert_eq!(sys.effective_dram_capacity(), PAGE_SIZE);
        // Over-shrinking the physical pool floors at zero, never wraps.
        sys.offline_dram(u64::MAX);
        assert_eq!(sys.offlined_dram_bytes(), 16 * PAGE_SIZE);
        assert_eq!(sys.physical_dram_capacity(), 0);
        assert_eq!(sys.effective_dram_capacity(), 0);
        assert_eq!(sys.free_bytes(Tier::Dram), 0);
    }

    #[test]
    fn begin_round_applies_device_faults_deterministically() {
        use crate::fault::FaultPlan;
        let mut sys = tiny_system();
        sys.allocate(&ObjectSpec::new("a", 8 * PAGE_SIZE), Tier::Dram)
            .unwrap();
        sys.set_fault_plan(
            FaultPlan::none()
                .with_seed(9)
                .with_page_poison(1.0)
                .with_dram_offlining(2, 4 * PAGE_SIZE)
                .with_degradation(Tier::Dram, 4, 2.0, 0.5),
        )
        .unwrap();
        sys.begin_round(0);
        assert_eq!(sys.fault_stats().pages_poisoned, 1);
        assert_eq!(sys.offlined_dram_bytes(), 0);
        assert_eq!(sys.degradation(), Some((Tier::Dram, 2.0, 0.5)));
        assert!(sys.degradation_shifted(), "window opened at round 0");
        let active = sys.active_config();
        assert!((active.dram.latency_seq_ns - sys.config.dram.latency_seq_ns * 2.0).abs() < 1e-9);
        assert!((active.dram.read_bw_gbps - sys.config.dram.read_bw_gbps * 0.5).abs() < 1e-9);
        assert!((active.pm.latency_seq_ns - sys.config.pm.latency_seq_ns).abs() < 1e-9);
        sys.begin_round(1);
        assert!(!sys.degradation_shifted(), "window stayed open");
        sys.begin_round(2);
        assert_eq!(sys.degradation(), None);
        assert!(sys.degradation_shifted(), "window closed at round 2");
        // Offlining struck at round 2 and is idempotent afterwards.
        assert_eq!(sys.offlined_dram_bytes(), 4 * PAGE_SIZE);
        sys.begin_round(3);
        assert_eq!(sys.offlined_dram_bytes(), 4 * PAGE_SIZE);
        assert_eq!(sys.fault_stats().offlined_bytes, 4 * PAGE_SIZE);
        assert_eq!(sys.fault_stats().pages_poisoned, 4);
        assert_eq!(sys.fault_stats().degraded_window_rounds, 2);
        // Residency always fits the shrunk physical pool.
        assert!(sys.page_table().bytes_in(Tier::Dram) <= sys.physical_dram_capacity());
        // And no poisoned page sits on DRAM.
        assert!(sys
            .page_table()
            .quarantined()
            .all(|id| sys.page_table().get(id).tier() == Tier::Pm));
    }

    #[test]
    fn device_state_survives_state_roundtrip() {
        let mut sys = tiny_system();
        sys.allocate(&ObjectSpec::new("a", 4 * PAGE_SIZE), Tier::Dram)
            .unwrap();
        sys.offline_dram(3 * PAGE_SIZE);
        sys.poison_page(1);
        sys.poison_page(3);
        let mut text = String::new();
        sys.encode_state(&mut text);
        let mut r = crate::checkpoint::Reader::new(&text);
        let back = HmSystem::decode_state(&mut r).unwrap();
        assert_eq!(back.offlined_dram_bytes(), 3 * PAGE_SIZE);
        assert!(back.page_table().is_quarantined(1));
        assert!(back.page_table().is_quarantined(3));
        assert_eq!(back.physical_dram_capacity(), sys.physical_dram_capacity());
        // Bitwise: quarantine is part of the page table's Debug output.
        assert_eq!(
            format!("{:?}", back.page_table()),
            format!("{:?}", sys.page_table())
        );
    }

    #[test]
    fn reset_clears_counters() {
        let mut sys = tiny_system();
        let id = sys
            .allocate(&ObjectSpec::new("X", 2 * PAGE_SIZE), Tier::Pm)
            .unwrap();
        sys.record_accesses(id, 50.0);
        assert!(sys.page_table().get(0).accessed);
        sys.reset_profiling_counters();
        assert!(!sys.page_table().get(0).accessed);
        assert_eq!(sys.page_table().get(0).access_count, 0.0);
    }
}
