//! Per-tier bandwidth timelines — the instrumentation behind Figure 6.
//!
//! The paper measures runtime DRAM/PM bandwidth with Intel PCM. The
//! emulation reconstructs the same series: each task contributes its bytes
//! uniformly over its execution interval, and the timeline bins the sum.

use serde::{Deserialize, Serialize};

use crate::system::HmError;

/// A structured, non-fatal runtime warning surfaced through the telemetry
/// channel instead of being silently swallowed. Rendered as one
/// `key=value` line on stderr by [`emit`](Warning::emit) so log scrapers
/// can parse it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Warning {
    /// WAL recovery dropped a torn or garbled tail while restoring the
    /// last durable checkpoint.
    WalTornTail {
        /// `next_round` of the surviving checkpoint (0 when none survived).
        round: u64,
        /// Bytes discarded from the tail of the WAL file.
        dropped_bytes: u64,
        /// Why the frame scan stopped (truncated payload, bad length, ...).
        reason: String,
    },
    /// A tenant's round panicked and the service's circuit breaker
    /// contained it as a strike instead of tearing the pool down
    /// (DESIGN.md §17).
    TenantPanicContained {
        /// Registry handle of the struck tenant.
        tenant: u32,
        /// Strike count after this panic (window-relative).
        strikes: u32,
        /// The panic payload, for the post-mortem.
        msg: String,
    },
}

impl std::fmt::Display for Warning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Warning::WalTornTail {
                round,
                dropped_bytes,
                reason,
            } => write!(
                f,
                "wal-torn-tail round={round} dropped_bytes={dropped_bytes} reason=\"{reason}\""
            ),
            Warning::TenantPanicContained {
                tenant,
                strikes,
                msg,
            } => write!(
                f,
                "tenant-panic-contained tenant={tenant} strikes={strikes} msg=\"{msg}\""
            ),
        }
    }
}

impl Warning {
    /// Emit the warning on the telemetry channel (stderr), one structured
    /// line.
    pub fn emit(&self) {
        eprintln!("warning: {self}");
    }
}

/// A recorded bandwidth sample.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BandwidthSample {
    /// Bin start time, ns (simulated).
    pub t_ns: f64,
    /// DRAM bandwidth during the bin, GB/s.
    pub dram_gbps: f64,
    /// PM bandwidth during the bin, GB/s.
    pub pm_gbps: f64,
}

/// Accumulates byte flows into fixed-width time bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BandwidthTimeline {
    bin_ns: f64,
    dram_bytes: Vec<f64>,
    pm_bytes: Vec<f64>,
    /// Simulated time offset at which the current round started, ns.
    pub clock_ns: f64,
}

impl BandwidthTimeline {
    /// New timeline with `bin_ns`-wide bins. Panics on a non-positive bin
    /// width; use [`BandwidthTimeline::try_new`] to handle that as an error.
    pub fn new(bin_ns: f64) -> Self {
        Self::try_new(bin_ns).expect("telemetry bin width must be positive")
    }

    /// Fallible constructor: rejects non-positive or non-finite bin widths
    /// instead of panicking.
    pub fn try_new(bin_ns: f64) -> Result<Self, HmError> {
        if !(bin_ns > 0.0 && bin_ns.is_finite()) {
            return Err(HmError::InvalidConfig(format!(
                "telemetry bin width must be positive and finite, got {bin_ns}"
            )));
        }
        Ok(Self {
            bin_ns,
            dram_bytes: Vec::new(),
            pm_bytes: Vec::new(),
            clock_ns: 0.0,
        })
    }

    /// Bin width, ns.
    pub fn bin_ns(&self) -> f64 {
        self.bin_ns
    }

    /// Number of bins materialised so far.
    pub fn num_bins(&self) -> usize {
        self.dram_bytes.len()
    }

    /// Zero the byte counters of bin `bin` (telemetry blackout fault:
    /// the collector lost that sampling interval).
    pub fn blackout_bin(&mut self, bin: usize) {
        if bin < self.dram_bytes.len() {
            self.dram_bytes[bin] = 0.0;
            self.pm_bytes[bin] = 0.0;
        }
    }

    fn ensure(&mut self, bin: usize) {
        if bin >= self.dram_bytes.len() {
            self.dram_bytes.resize(bin + 1, 0.0);
            self.pm_bytes.resize(bin + 1, 0.0);
        }
    }

    /// Record a task that ran on `[start_ns, start_ns + dur_ns)` moving
    /// `dram_bytes` from DRAM and `pm_bytes` from PM, spread uniformly.
    pub fn record_interval(&mut self, start_ns: f64, dur_ns: f64, dram_bytes: f64, pm_bytes: f64) {
        if dur_ns <= 0.0 {
            return;
        }
        let first = (start_ns / self.bin_ns).floor() as usize;
        let last = ((start_ns + dur_ns) / self.bin_ns).ceil() as usize;
        self.ensure(last.saturating_sub(1).max(first));
        let per_ns_d = dram_bytes / dur_ns;
        let per_ns_p = pm_bytes / dur_ns;
        for bin in first..last {
            let lo = (bin as f64 * self.bin_ns).max(start_ns);
            let hi = ((bin + 1) as f64 * self.bin_ns).min(start_ns + dur_ns);
            let span = (hi - lo).max(0.0);
            self.dram_bytes[bin] += per_ns_d * span;
            self.pm_bytes[bin] += per_ns_p * span;
        }
    }

    /// Advance the round clock by `dur_ns`.
    pub fn advance(&mut self, dur_ns: f64) {
        self.clock_ns += dur_ns;
    }

    /// Produce the sampled series (GB/s per bin; GB/s == bytes/ns).
    pub fn samples(&self) -> Vec<BandwidthSample> {
        self.dram_bytes
            .iter()
            .zip(&self.pm_bytes)
            .enumerate()
            .map(|(i, (&d, &p))| BandwidthSample {
                t_ns: i as f64 * self.bin_ns,
                dram_gbps: d / self.bin_ns,
                pm_gbps: p / self.bin_ns,
            })
            .collect()
    }

    /// Average DRAM bandwidth over the non-empty prefix, GB/s.
    pub fn avg_dram_gbps(&self) -> f64 {
        avg(&self.dram_bytes, self.bin_ns)
    }

    /// Average PM bandwidth over the non-empty prefix, GB/s.
    pub fn avg_pm_gbps(&self) -> f64 {
        avg(&self.pm_bytes, self.bin_ns)
    }

    /// Serialize the timeline for a checkpoint (bin width, clock, every
    /// bin's byte counters — `{:?}` floats round-trip bit-exact).
    pub fn encode_state(&self, out: &mut String) {
        use std::fmt::Write as _;
        writeln!(
            out,
            "timeline {:?} {:?} {}",
            self.bin_ns,
            self.clock_ns,
            self.dram_bytes.len()
        )
        .expect("writing to String cannot fail");
        for (d, p) in self.dram_bytes.iter().zip(&self.pm_bytes) {
            writeln!(out, "bin {d:?} {p:?}").expect("writing to String cannot fail");
        }
    }

    /// Restore a timeline serialized by [`encode_state`](Self::encode_state).
    pub fn decode_state(r: &mut crate::checkpoint::Reader<'_>) -> Result<Self, HmError> {
        use crate::checkpoint::{p_f64, p_usize};
        let t = r.line("timeline", 3)?;
        let (bin_ns, clock_ns, n) = (p_f64(t[0])?, p_f64(t[1])?, p_usize(t[2])?);
        let mut tl = Self::try_new(bin_ns)?;
        tl.clock_ns = clock_ns;
        tl.dram_bytes.reserve(n);
        tl.pm_bytes.reserve(n);
        for _ in 0..n {
            let t = r.line("bin", 2)?;
            tl.dram_bytes.push(p_f64(t[0])?);
            tl.pm_bytes.push(p_f64(t[1])?);
        }
        Ok(tl)
    }
}

fn avg(bytes: &[f64], bin_ns: f64) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    let total: f64 = bytes.iter().sum();
    total / (bytes.len() as f64 * bin_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_spread_over_bins() {
        let mut t = BandwidthTimeline::new(100.0);
        t.record_interval(0.0, 200.0, 2000.0, 0.0); // 10 B/ns over 2 bins
        let s = t.samples();
        assert_eq!(s.len(), 2);
        assert!((s[0].dram_gbps - 10.0).abs() < 1e-9);
        assert!((s[1].dram_gbps - 10.0).abs() < 1e-9);
    }

    #[test]
    fn partial_bin_overlap() {
        let mut t = BandwidthTimeline::new(100.0);
        t.record_interval(50.0, 100.0, 1000.0, 1000.0); // spans halves of 2 bins
        let s = t.samples();
        assert!((s[0].dram_gbps - 5.0).abs() < 1e-9);
        assert!((s[1].pm_gbps - 5.0).abs() < 1e-9);
        // Total bytes conserved.
        let total: f64 = s.iter().map(|x| x.dram_gbps * 100.0).sum();
        assert!((total - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn averages() {
        let mut t = BandwidthTimeline::new(10.0);
        t.record_interval(0.0, 20.0, 200.0, 100.0);
        assert!((t.avg_dram_gbps() - 10.0).abs() < 1e-9);
        assert!((t.avg_pm_gbps() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_ignored() {
        let mut t = BandwidthTimeline::new(10.0);
        t.record_interval(0.0, 0.0, 100.0, 100.0);
        assert!(t.samples().is_empty());
    }

    #[test]
    fn clock_advances() {
        let mut t = BandwidthTimeline::new(10.0);
        t.advance(50.0);
        t.advance(25.0);
        assert!((t.clock_ns - 75.0).abs() < 1e-12);
    }

    #[test]
    fn try_new_rejects_bad_widths() {
        assert!(BandwidthTimeline::try_new(0.0).is_err());
        assert!(BandwidthTimeline::try_new(-5.0).is_err());
        assert!(BandwidthTimeline::try_new(f64::NAN).is_err());
        assert!(BandwidthTimeline::try_new(f64::INFINITY).is_err());
        assert!(BandwidthTimeline::try_new(10.0).is_ok());
    }

    #[test]
    fn blackout_zeroes_one_bin() {
        let mut t = BandwidthTimeline::new(100.0);
        t.record_interval(0.0, 200.0, 2000.0, 400.0);
        assert_eq!(t.num_bins(), 2);
        t.blackout_bin(0);
        let s = t.samples();
        assert_eq!(s[0].dram_gbps, 0.0);
        assert_eq!(s[0].pm_gbps, 0.0);
        assert!(s[1].dram_gbps > 0.0);
        t.blackout_bin(99); // out of range: no-op
    }
}
