//! Deterministic fault injection for the emulated HM system.
//!
//! Real heterogeneous-memory deployments misbehave in ways the clean
//! emulation never shows: page migrations fail transiently (NUMA races,
//! `move_pages` returning `-EBUSY`), PTE-scan and PMC samples get lost
//! under load, co-tenants steal DRAM capacity, and telemetry collectors
//! drop bins. This module injects those faults *reproducibly*: every
//! decision is a pure function of the plan seed and the identity of the
//! event (round, page, attempt, task, event index, bin), so the same
//! [`FaultPlan`] replays bit-identically and [`FaultPlan::none`] leaves
//! the simulation byte-for-byte untouched.
//!
//! The runtime and the Merchandiser policy respond with a graceful-
//! degradation ladder rather than panics; see `DESIGN.md` ("Failure model
//! & degradation ladder").

use serde::{Deserialize, Serialize};

use crate::config::Tier;
use crate::page::PageId;
use crate::system::HmError;

/// splitmix64 finalizer: the one-way mixer behind every fault decision.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Decision domains keep the per-event hash streams independent so e.g.
/// enabling PMC dropout never perturbs migration-failure draws.
mod domain {
    pub const MIGRATION: u64 = 0x4D49_4752; // "MIGR"
    pub const PTE: u64 = 0x5054_4520; // "PTE "
    pub const PMC: u64 = 0x504D_4320; // "PMC "
    pub const TELEMETRY: u64 = 0x5445_4C45; // "TELE"
    pub const CHECKPOINT: u64 = 0x434B_5054; // "CKPT"
    pub const DEVICE: u64 = 0x4445_5649; // "DEVI"
}

/// Where inside a round a [`FaultKind::Crash`] strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashPoint {
    /// At the round boundary, before the round's first mutation (the
    /// process died between two task instances).
    BetweenRounds,
    /// Inside the round's migration batch, after this many page-migration
    /// attempts have been charged (the process died mid-`move_pages`).
    MidMigration {
        /// Attempts completed before the crash fires.
        after_attempts: u64,
    },
}

/// Wall-time multiplier applied to a round executed inside an open
/// [`FaultKind::TenantStall`] window. Big enough that any sane
/// stall-threshold (a small multiple of the tenant's normal round time)
/// detects it, small enough that clocks never overflow.
pub const STALL_MULT: f64 = 1024.0;

/// A scripted terminal or behavioural fault. Unlike the rate-based faults,
/// these are single scripted events keyed to a round:
///
/// * [`Crash`](Self::Crash) stops the run with
///   [`HmError::Crashed`](crate::system::HmError::Crashed) and is continued
///   via `Executor::resume` from the latest checkpoint.
/// * [`TenantPanic`](Self::TenantPanic) makes the tenant's job panic at the
///   round boundary — before any mutation — modelling a poisoned job that
///   dies inside the pool. The service supervisor contains it (DESIGN.md
///   §17); it never reaches `HmError`.
/// * [`TenantStall`](Self::TenantStall) inflates round wall time by
///   [`STALL_MULT`] for a window of rounds, modelling a hung dependency;
///   the supervisor's stall threshold converts it into breaker strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Kill the process at `point` of `round`.
    Crash {
        /// Round the crash strikes in.
        round: u64,
        /// Position within the round.
        point: CrashPoint,
    },
    /// Panic the tenant's job at the boundary before `round`, leaving the
    /// executor exactly at its pre-round state. Non-latching: until
    /// disarmed (recovery), every attempt to run `round` panics again.
    TenantPanic {
        /// Round whose boundary the panic strikes at.
        round: u64,
    },
    /// Stall rounds `round .. round + rounds`: each one's wall time is
    /// multiplied by [`STALL_MULT`]. *Not* disarmed by recovery — a hung
    /// dependency stays hung — so a stalled tenant re-strikes until its
    /// breaker gives up for good.
    TenantStall {
        /// First stalled round.
        round: u64,
        /// Length of the stall window in rounds.
        rounds: u64,
    },
}

/// Declarative description of the faults to inject into one run.
///
/// All rates are probabilities in `[0, 1]`. The default plan (and
/// [`FaultPlan::none`]) injects nothing, and the runtime skips every fault
/// hook in that case, keeping the no-fault fast path bit-identical to a
/// build without this module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for all fault decisions (independent of the workload seed).
    pub seed: u64,
    /// Probability that one migration *attempt* of one page fails.
    pub migration_fail_rate: f64,
    /// Retries after a failed attempt before the page is abandoned for
    /// the round (each attempt is charged as migration overhead).
    pub migration_max_retries: u32,
    /// Probability that a PTE-scan sample (accessed-bit read) is lost.
    pub pte_sample_dropout: f64,
    /// Probability that one PMC event counter of one task profile is lost.
    pub pmc_event_dropout: f64,
    /// DRAM bytes transiently claimed by a simulated co-tenant.
    pub dram_pressure_bytes: u64,
    /// Co-tenant duty cycle: pressure is applied on rounds `r` with
    /// `r % period < ceil(period / 2)`. `0` means constant pressure.
    pub pressure_period_rounds: u64,
    /// Probability that a finished telemetry bin is blacked out (zeroed).
    pub telemetry_blackout: f64,
    /// Probability that one checkpoint-WAL write attempt fails (retried
    /// with [`Backoff`](crate::backoff::Backoff); accounted in `WalStats`,
    /// never in [`FaultStats`], so a supervised run's report stays
    /// bit-identical to an unsupervised one).
    pub checkpoint_write_fail_rate: f64,
    /// Probability per round that an uncorrectable ECC error poisons one
    /// DRAM-resident frame. The victim page is quarantined (permanently
    /// pinned off DRAM), a repair cost is charged, and the dead frame
    /// shrinks physical DRAM capacity by one page.
    pub page_poison_rate: f64,
    /// Tier whose device degrades during degradation windows.
    pub degrade_tier: Tier,
    /// Degradation duty cycle: the window is open on rounds `r` with
    /// `r % period < ceil(period / 2)`. `0` means degraded for the whole
    /// run. Only meaningful when a multiplier is non-trivial.
    pub degrade_period_rounds: u64,
    /// Latency multiplier applied to `degrade_tier` inside a window (≥ 1).
    pub degrade_lat_mult: f64,
    /// Bandwidth multiplier applied to `degrade_tier` inside a window
    /// (in `(0, 1]`).
    pub degrade_bw_mult: f64,
    /// Round at which DRAM capacity offlining strikes (a DIMM/rank dies).
    /// Only meaningful when `offline_bytes > 0`.
    pub offline_round: u64,
    /// DRAM bytes permanently offlined at `offline_round`.
    pub offline_bytes: u64,
    /// Scripted terminal fault, if any (see [`FaultKind`]).
    pub crash: Option<FaultKind>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: nothing fails, nothing is dropped.
    pub fn none() -> Self {
        Self {
            seed: 0,
            migration_fail_rate: 0.0,
            migration_max_retries: 2,
            pte_sample_dropout: 0.0,
            pmc_event_dropout: 0.0,
            dram_pressure_bytes: 0,
            pressure_period_rounds: 0,
            telemetry_blackout: 0.0,
            checkpoint_write_fail_rate: 0.0,
            page_poison_rate: 0.0,
            degrade_tier: Tier::Pm,
            degrade_period_rounds: 0,
            degrade_lat_mult: 1.0,
            degrade_bw_mult: 1.0,
            offline_round: 0,
            offline_bytes: 0,
            crash: None,
        }
    }

    /// True when the plan injects no fault at all.
    pub fn is_none(&self) -> bool {
        self.migration_fail_rate == 0.0
            && self.pte_sample_dropout == 0.0
            && self.pmc_event_dropout == 0.0
            && self.dram_pressure_bytes == 0
            && self.telemetry_blackout == 0.0
            && self.checkpoint_write_fail_rate == 0.0
            && self.page_poison_rate == 0.0
            && !self.degradation_enabled()
            && self.offline_bytes == 0
            && self.crash.is_none()
    }

    /// True when a degradation window would change tier parameters at all.
    pub fn degradation_enabled(&self) -> bool {
        self.degrade_lat_mult != 1.0 || self.degrade_bw_mult != 1.0
    }

    /// Set the fault seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fail each migration attempt with probability `rate`, retrying up to
    /// `retries` times per page.
    pub fn with_migration_failures(mut self, rate: f64, retries: u32) -> Self {
        self.migration_fail_rate = rate;
        self.migration_max_retries = retries;
        self
    }

    /// Drop PTE-scan samples and PMC event counters with the given
    /// probabilities.
    pub fn with_sample_dropout(mut self, pte: f64, pmc: f64) -> Self {
        self.pte_sample_dropout = pte;
        self.pmc_event_dropout = pmc;
        self
    }

    /// Apply `bytes` of co-tenant DRAM pressure with duty period `period`
    /// (rounds; `0` = constant).
    pub fn with_dram_pressure(mut self, bytes: u64, period: u64) -> Self {
        self.dram_pressure_bytes = bytes;
        self.pressure_period_rounds = period;
        self
    }

    /// Black out finished telemetry bins with probability `rate`.
    pub fn with_telemetry_blackout(mut self, rate: f64) -> Self {
        self.telemetry_blackout = rate;
        self
    }

    /// Fail each checkpoint-WAL write attempt with probability `rate`.
    pub fn with_checkpoint_write_failures(mut self, rate: f64) -> Self {
        self.checkpoint_write_fail_rate = rate;
        self
    }

    /// Poison one DRAM-resident frame per round with probability `rate`.
    pub fn with_page_poison(mut self, rate: f64) -> Self {
        self.page_poison_rate = rate;
        self
    }

    /// Degrade `tier` by `lat_mult`× latency and `bw_mult`× bandwidth on a
    /// duty cycle of `period` rounds (`0` = degraded for the whole run).
    pub fn with_degradation(
        mut self,
        tier: Tier,
        period: u64,
        lat_mult: f64,
        bw_mult: f64,
    ) -> Self {
        self.degrade_tier = tier;
        self.degrade_period_rounds = period;
        self.degrade_lat_mult = lat_mult;
        self.degrade_bw_mult = bw_mult;
        self
    }

    /// Permanently offline `bytes` of DRAM at the start of `round`.
    pub fn with_dram_offlining(mut self, round: u64, bytes: u64) -> Self {
        self.offline_round = round;
        self.offline_bytes = bytes;
        self
    }

    /// Arm a scripted fault (see [`FaultKind`]).
    pub fn with_fault(mut self, kind: FaultKind) -> Self {
        self.crash = Some(kind);
        self
    }

    /// Panic the tenant's job at the boundary before `round` (shorthand
    /// for [`with_fault`](Self::with_fault) with
    /// [`FaultKind::TenantPanic`]).
    pub fn with_tenant_panic(self, round: u64) -> Self {
        self.with_fault(FaultKind::TenantPanic { round })
    }

    /// Stall rounds `round .. round + rounds` by [`STALL_MULT`]×
    /// (shorthand for [`with_fault`](Self::with_fault) with
    /// [`FaultKind::TenantStall`]).
    pub fn with_tenant_stall(self, round: u64, rounds: u64) -> Self {
        self.with_fault(FaultKind::TenantStall { round, rounds })
    }

    /// Check that every rate is a probability and the plan is physically
    /// meaningful.
    pub fn validate(&self) -> Result<(), HmError> {
        for (name, rate) in [
            ("migration_fail_rate", self.migration_fail_rate),
            ("pte_sample_dropout", self.pte_sample_dropout),
            ("pmc_event_dropout", self.pmc_event_dropout),
            ("telemetry_blackout", self.telemetry_blackout),
            (
                "checkpoint_write_fail_rate",
                self.checkpoint_write_fail_rate,
            ),
            ("page_poison_rate", self.page_poison_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(HmError::InvalidConfig(format!(
                    "fault plan: {name} = {rate} is not a probability"
                )));
            }
        }
        if !(self.degrade_lat_mult >= 1.0 && self.degrade_lat_mult.is_finite()) {
            return Err(HmError::InvalidConfig(format!(
                "fault plan: degrade_lat_mult = {} must be a finite multiplier >= 1",
                self.degrade_lat_mult
            )));
        }
        if !(self.degrade_bw_mult > 0.0 && self.degrade_bw_mult <= 1.0) {
            return Err(HmError::InvalidConfig(format!(
                "fault plan: degrade_bw_mult = {} must be in (0, 1]",
                self.degrade_bw_mult
            )));
        }
        Ok(())
    }
}

/// Counters of the faults actually injected (and survived) so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Migration attempts that were failed by injection.
    pub migration_retries: u64,
    /// Pages abandoned after exhausting the retry budget.
    pub failed_pages: u64,
    /// PTE-scan samples lost.
    pub dropped_pte_samples: u64,
    /// PMC event counters lost.
    pub dropped_pmc_events: u64,
    /// Telemetry bins zeroed.
    pub blacked_out_bins: u64,
    /// DRAM pages evicted to make room for co-tenant pressure.
    pub pressure_evictions: u64,
    /// DRAM frames poisoned by ECC-UE strikes (and quarantined).
    pub pages_poisoned: u64,
    /// Rounds executed inside an open degradation window.
    pub degraded_window_rounds: u64,
    /// DRAM bytes permanently offlined so far.
    pub offlined_bytes: u64,
    /// Scripted tenant panics fired (each one left the executor at its
    /// pre-round boundary state).
    pub tenant_panics: u64,
    /// Rounds executed inside an open tenant-stall window.
    pub stalled_rounds: u64,
}

/// Fault accounting carried by a `RunReport`: the injector's counters plus
/// how the policy coped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Total migration attempts (equals pages moved when nothing fails).
    pub migration_attempts: u64,
    /// Attempts failed by injection and retried.
    pub migration_retries: u64,
    /// Pages abandoned after exhausting retries.
    pub failed_pages: u64,
    /// PTE-scan samples lost.
    pub dropped_pte_samples: u64,
    /// PMC event counters lost.
    pub dropped_pmc_events: u64,
    /// Telemetry bins zeroed.
    pub blacked_out_bins: u64,
    /// DRAM pages evicted for co-tenant pressure.
    pub pressure_evictions: u64,
    /// Rounds the policy ran in a degraded mode (fallback placement).
    pub degraded_rounds: u64,
    /// DRAM frames poisoned and quarantined.
    pub pages_poisoned: u64,
    /// Rounds executed inside an open device-degradation window.
    pub degraded_window_rounds: u64,
    /// DRAM bytes permanently offlined.
    pub offlined_bytes: u64,
    /// Scripted tenant panics fired.
    pub tenant_panics: u64,
    /// Rounds executed inside an open tenant-stall window.
    pub stalled_rounds: u64,
}

/// Stateful injector owned by the `HmSystem`. Holds the plan, the current
/// round, and running [`FaultStats`]. Every decision method is
/// deterministic in (plan seed, event identity); the only mutable state is
/// the statistics and a per-round PTE draw counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjector {
    plan: FaultPlan,
    round: u64,
    pte_draws: u64,
    /// Page-migration attempts charged this round (drives
    /// [`CrashPoint::MidMigration`]).
    migration_calls: u64,
    /// The scripted crash has fired; the system is dead until resumed.
    crashed: bool,
    stats: FaultStats,
}

impl FaultInjector {
    /// Injector for `plan` (validate first: see [`FaultPlan::validate`]).
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            round: 0,
            pte_draws: 0,
            migration_calls: 0,
            crashed: false,
            stats: FaultStats::default(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Enter `round`: resets the per-round PTE draw counter so replays are
    /// independent of how many rounds ran before.
    pub fn begin_round(&mut self, round: u64) {
        self.round = round;
        self.pte_draws = 0;
        self.migration_calls = 0;
    }

    /// The round the injector's clock currently sits in.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Has the scripted crash fired? A crashed system makes no further
    /// progress; its post-crash state is discarded and recovery replays
    /// from the latest checkpoint.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Disarm the scripted one-shot faults (recovery: the resumed process
    /// must not die at the same point again). [`FaultKind::TenantStall`]
    /// stays armed — a hung dependency is not fixed by restarting the
    /// victim — which is what lets the supervisor distinguish a
    /// recoverable panic from a persistently failing tenant.
    pub fn disarm_crash(&mut self) {
        if !matches!(self.plan.crash, Some(FaultKind::TenantStall { .. })) {
            self.plan.crash = None;
        }
        self.crashed = false;
    }

    /// Does the scripted crash fire at the boundary before `round`?
    /// One-shot: fires at most once, then latches [`crashed`](Self::crashed).
    pub fn crash_at_round_start(&mut self, round: u64) -> bool {
        if self.crashed {
            return true;
        }
        if let Some(FaultKind::Crash {
            round: r,
            point: CrashPoint::BetweenRounds,
        }) = self.plan.crash
        {
            if r == round {
                self.crashed = true;
                return true;
            }
        }
        false
    }

    /// Does the scripted crash fire before the next page-migration attempt
    /// of the current round? Counts attempts as a side effect.
    pub fn crash_before_migration_attempt(&mut self) -> bool {
        if self.crashed {
            return true;
        }
        let done = self.migration_calls;
        self.migration_calls += 1;
        if let Some(FaultKind::Crash {
            round: r,
            point: CrashPoint::MidMigration { after_attempts },
        }) = self.plan.crash
        {
            if r == self.round && done >= after_attempts {
                self.crashed = true;
                return true;
            }
        }
        false
    }

    /// Is a scripted [`FaultKind::TenantPanic`] due at the boundary before
    /// `round`? Pure and non-latching: the caller panics before mutating
    /// anything, and until [`disarm_crash`](Self::disarm_crash) clears the
    /// plan every retry of `round` panics again (strikes accumulate in the
    /// supervisor's breaker, not here).
    pub fn panic_due(&self, round: u64) -> bool {
        matches!(self.plan.crash, Some(FaultKind::TenantPanic { round: r }) if r == round)
    }

    /// Record a scripted tenant panic about to fire (the executor's only
    /// pre-panic mutation; deterministic, so checkpoints taken after K
    /// strikes replay bit-identically).
    pub fn note_tenant_panic(&mut self) {
        self.stats.tenant_panics += 1;
    }

    /// Wall-time multiplier for `round` under an open
    /// [`FaultKind::TenantStall`] window ([`STALL_MULT`], else 1). Pure in
    /// (plan, round).
    pub fn stall_multiplier(&self, round: u64) -> f64 {
        match self.plan.crash {
            Some(FaultKind::TenantStall { round: r, rounds })
                if round >= r && round < r + rounds =>
            {
                STALL_MULT
            }
            _ => 1.0,
        }
    }

    /// Record a round executed inside an open tenant-stall window.
    pub fn note_stalled_round(&mut self) {
        self.stats.stalled_rounds += 1;
    }

    /// Does WAL-write attempt `attempt` of checkpoint record `record`
    /// fail? Pure in (plan seed, record, attempt); deliberately not
    /// recorded in [`FaultStats`] — checkpointing is supervision overhead,
    /// and its accounting (in `WalStats`) must not perturb the run report.
    pub fn checkpoint_write_fails(&self, record: u64, attempt: u32) -> bool {
        self.chance(
            self.plan.checkpoint_write_fail_rate,
            domain::CHECKPOINT,
            record,
            attempt as u64,
        )
    }

    /// Deterministic Bernoulli draw keyed on (seed, domain, a, b).
    fn chance(&self, p: f64, dom: u64, a: u64, b: u64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let h = mix64(self.plan.seed ^ mix64(dom ^ mix64(a) ^ a.rotate_left(17) ^ b));
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Does this migration attempt of `page` fail? Records the retry /
    /// abandoned-page statistics as a side effect.
    pub fn migration_attempt_fails(&mut self, page: PageId, attempt: u32) -> bool {
        let fails = self.chance(
            self.plan.migration_fail_rate,
            domain::MIGRATION,
            page,
            (self.round << 8) | attempt as u64,
        );
        if fails {
            self.stats.migration_retries += 1;
        }
        fails
    }

    /// Retry budget per page.
    pub fn max_retries(&self) -> u32 {
        self.plan.migration_max_retries
    }

    /// Record a page abandoned after exhausting its retry budget.
    pub fn note_failed_page(&mut self) {
        self.stats.failed_pages += 1;
    }

    /// Is the next PTE-scan sample lost? Draws are numbered per round, so
    /// a scan issued at the same point of the same round always sees the
    /// same answer.
    pub fn drop_pte_sample(&mut self) -> bool {
        let n = self.pte_draws;
        self.pte_draws += 1;
        let dropped = self.chance(self.plan.pte_sample_dropout, domain::PTE, self.round, n);
        if dropped {
            self.stats.dropped_pte_samples += 1;
        }
        dropped
    }

    /// Is PMC event `event` of `task`'s profile lost this round?
    pub fn drop_pmc_event(&mut self, task: usize, event: usize) -> bool {
        let dropped = self.chance(
            self.plan.pmc_event_dropout,
            domain::PMC,
            ((task as u64) << 16) ^ self.round,
            event as u64,
        );
        if dropped {
            self.stats.dropped_pmc_events += 1;
        }
        dropped
    }

    /// Is telemetry bin `bin` blacked out?
    pub fn blackout_bin(&mut self, bin: usize) -> bool {
        let out = self.chance(
            self.plan.telemetry_blackout,
            domain::TELEMETRY,
            bin as u64,
            0,
        );
        if out {
            self.stats.blacked_out_bins += 1;
        }
        out
    }

    /// DRAM bytes the simulated co-tenant claims during the current round.
    pub fn current_pressure(&self) -> u64 {
        if self.plan.dram_pressure_bytes == 0 {
            return 0;
        }
        let period = self.plan.pressure_period_rounds;
        if period == 0 || self.round % period < period.div_ceil(2) {
            self.plan.dram_pressure_bytes
        } else {
            0
        }
    }

    /// Record DRAM pages evicted to honour co-tenant pressure.
    pub fn note_pressure_evictions(&mut self, pages: u64) {
        self.stats.pressure_evictions += pages;
    }

    /// Does an ECC-UE strike poison a DRAM frame in `round`? Pure in
    /// (plan seed, round); at most one strike per round.
    pub fn poison_strikes(&self, round: u64) -> bool {
        self.chance(self.plan.page_poison_rate, domain::DEVICE, round, 0)
    }

    /// Which of the `resident` DRAM-resident pages (in page-id order) the
    /// strike hits. Pure in (plan seed, round, resident).
    pub fn poison_victim_index(&self, round: u64, resident: u64) -> u64 {
        debug_assert!(resident > 0);
        mix64(self.plan.seed ^ mix64(domain::DEVICE ^ mix64(round) ^ 0x5649_4354)) % resident
    }

    /// Record a frame poisoned and quarantined.
    pub fn note_poisoned_page(&mut self) {
        self.stats.pages_poisoned += 1;
    }

    /// The device degradation active in `round`, if any: `(tier,
    /// latency multiplier, bandwidth multiplier)`. Pure in (plan, round) —
    /// never stateful, so crash-resume replays windows bit-identically.
    pub fn current_degradation(&self, round: u64) -> Option<(Tier, f64, f64)> {
        if !self.plan.degradation_enabled() {
            return None;
        }
        let period = self.plan.degrade_period_rounds;
        if period == 0 || round % period < period.div_ceil(2) {
            Some((
                self.plan.degrade_tier,
                self.plan.degrade_lat_mult,
                self.plan.degrade_bw_mult,
            ))
        } else {
            None
        }
    }

    /// Record a round executed inside an open degradation window.
    pub fn note_window_round(&mut self) {
        self.stats.degraded_window_rounds += 1;
    }

    /// DRAM bytes that must be offline once `round` has begun. Monotone in
    /// `round` (offlining is permanent), so the caller applies the
    /// difference against what it already offlined — idempotent across
    /// checkpoint/resume.
    pub fn offline_due(&self, round: u64) -> u64 {
        if self.plan.offline_bytes > 0 && round >= self.plan.offline_round {
            self.plan.offline_bytes
        } else {
            0
        }
    }

    /// Record DRAM bytes newly offlined.
    pub fn note_offlined(&mut self, bytes: u64) {
        self.stats.offlined_bytes += bytes;
    }

    /// Serialize the injector for a checkpoint: the plan, the round clock,
    /// the per-round draw cursors, the crash latch, and the statistics.
    pub fn encode_state(&self, out: &mut String) {
        use std::fmt::Write as _;
        let p = &self.plan;
        let crash = match p.crash {
            None => "none".to_string(),
            Some(FaultKind::Crash {
                round,
                point: CrashPoint::BetweenRounds,
            }) => format!("boundary {round}"),
            Some(FaultKind::Crash {
                round,
                point: CrashPoint::MidMigration { after_attempts },
            }) => format!("midmig {round} {after_attempts}"),
            Some(FaultKind::TenantPanic { round }) => format!("panic {round}"),
            Some(FaultKind::TenantStall { round, rounds }) => format!("stall {round} {rounds}"),
        };
        writeln!(
            out,
            "faultplan {} {:?} {} {:?} {:?} {} {} {:?} {:?} {:?} {} {} {:?} {:?} {} {} {crash}",
            p.seed,
            p.migration_fail_rate,
            p.migration_max_retries,
            p.pte_sample_dropout,
            p.pmc_event_dropout,
            p.dram_pressure_bytes,
            p.pressure_period_rounds,
            p.telemetry_blackout,
            p.checkpoint_write_fail_rate,
            p.page_poison_rate,
            match p.degrade_tier {
                Tier::Dram => "D",
                Tier::Pm => "P",
            },
            p.degrade_period_rounds,
            p.degrade_lat_mult,
            p.degrade_bw_mult,
            p.offline_round,
            p.offline_bytes,
        )
        .expect("writing to String cannot fail");
        writeln!(
            out,
            "faultstate {} {} {} {}",
            self.round, self.pte_draws, self.migration_calls, self.crashed as u8
        )
        .expect("writing to String cannot fail");
        let s = &self.stats;
        writeln!(
            out,
            "faultstats {} {} {} {} {} {} {} {} {} {} {}",
            s.migration_retries,
            s.failed_pages,
            s.dropped_pte_samples,
            s.dropped_pmc_events,
            s.blacked_out_bins,
            s.pressure_evictions,
            s.pages_poisoned,
            s.degraded_window_rounds,
            s.offlined_bytes,
            s.tenant_panics,
            s.stalled_rounds
        )
        .expect("writing to String cannot fail");
    }

    /// Restore an injector serialized by [`encode_state`](Self::encode_state).
    pub fn decode_state(r: &mut crate::checkpoint::Reader<'_>) -> Result<Self, HmError> {
        use crate::checkpoint::{corrupt, p_bool, p_f64, p_u32, p_u64};
        let t = r.line("faultplan", 16)?;
        let crash = match &t[16..] {
            ["none"] => None,
            ["boundary", round] => Some(FaultKind::Crash {
                round: p_u64(round)?,
                point: CrashPoint::BetweenRounds,
            }),
            ["midmig", round, after] => Some(FaultKind::Crash {
                round: p_u64(round)?,
                point: CrashPoint::MidMigration {
                    after_attempts: p_u64(after)?,
                },
            }),
            ["panic", round] => Some(FaultKind::TenantPanic {
                round: p_u64(round)?,
            }),
            ["stall", round, rounds] => Some(FaultKind::TenantStall {
                round: p_u64(round)?,
                rounds: p_u64(rounds)?,
            }),
            _ => return Err(corrupt("bad crash spec in faultplan")),
        };
        let degrade_tier = match t[10] {
            "D" => Tier::Dram,
            "P" => Tier::Pm,
            other => return Err(corrupt(&format!("bad degrade tier {other:?} in faultplan"))),
        };
        let plan = FaultPlan {
            seed: p_u64(t[0])?,
            migration_fail_rate: p_f64(t[1])?,
            migration_max_retries: p_u32(t[2])?,
            pte_sample_dropout: p_f64(t[3])?,
            pmc_event_dropout: p_f64(t[4])?,
            dram_pressure_bytes: p_u64(t[5])?,
            pressure_period_rounds: p_u64(t[6])?,
            telemetry_blackout: p_f64(t[7])?,
            checkpoint_write_fail_rate: p_f64(t[8])?,
            page_poison_rate: p_f64(t[9])?,
            degrade_tier,
            degrade_period_rounds: p_u64(t[11])?,
            degrade_lat_mult: p_f64(t[12])?,
            degrade_bw_mult: p_f64(t[13])?,
            offline_round: p_u64(t[14])?,
            offline_bytes: p_u64(t[15])?,
            crash,
        };
        plan.validate()?;
        let t = r.line("faultstate", 4)?;
        let (round, pte_draws, migration_calls, crashed) =
            (p_u64(t[0])?, p_u64(t[1])?, p_u64(t[2])?, p_bool(t[3])?);
        let t = r.line("faultstats", 9)?;
        let stats = FaultStats {
            migration_retries: p_u64(t[0])?,
            failed_pages: p_u64(t[1])?,
            dropped_pte_samples: p_u64(t[2])?,
            dropped_pmc_events: p_u64(t[3])?,
            blacked_out_bins: p_u64(t[4])?,
            pressure_evictions: p_u64(t[5])?,
            pages_poisoned: p_u64(t[6])?,
            degraded_window_rounds: p_u64(t[7])?,
            offlined_bytes: p_u64(t[8])?,
            // v6 appended the tenant-fault counters; pre-v6 frames carry 9
            // tokens and restore with zeroed counters.
            tenant_panics: t.get(9).map(|s| p_u64(s)).transpose()?.unwrap_or(0),
            stalled_rounds: t.get(10).map(|s| p_u64(s)).transpose()?.unwrap_or(0),
        };
        Ok(Self {
            plan,
            round,
            pte_draws,
            migration_calls,
            crashed,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        plan.validate().unwrap();
        let mut inj = FaultInjector::new(plan);
        inj.begin_round(3);
        assert!(!inj.migration_attempt_fails(7, 0));
        assert!(!inj.drop_pte_sample());
        assert!(!inj.drop_pmc_event(0, 5));
        assert!(!inj.blackout_bin(9));
        assert_eq!(inj.current_pressure(), 0);
        assert!(!inj.poison_strikes(3));
        assert_eq!(inj.current_degradation(3), None);
        assert_eq!(inj.offline_due(3), 0);
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn decisions_replay_bit_identically() {
        let plan = FaultPlan::none()
            .with_seed(99)
            .with_migration_failures(0.3, 2)
            .with_sample_dropout(0.2, 0.25)
            .with_telemetry_blackout(0.15);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for round in 0..5 {
            a.begin_round(round);
            b.begin_round(round);
            for page in 0..50u64 {
                for attempt in 0..3 {
                    assert_eq!(
                        a.migration_attempt_fails(page, attempt),
                        b.migration_attempt_fails(page, attempt)
                    );
                }
            }
            for _ in 0..100 {
                assert_eq!(a.drop_pte_sample(), b.drop_pte_sample());
            }
            for task in 0..4 {
                for ev in 0..14 {
                    assert_eq!(a.drop_pmc_event(task, ev), b.drop_pmc_event(task, ev));
                }
            }
            for bin in 0..20 {
                assert_eq!(a.blackout_bin(bin), b.blackout_bin(bin));
            }
        }
        assert_eq!(a.stats(), b.stats());
        // And the rates actually bite somewhere.
        assert!(a.stats().migration_retries > 0);
        assert!(a.stats().dropped_pte_samples > 0);
        assert!(a.stats().dropped_pmc_events > 0);
        assert!(a.stats().blacked_out_bins > 0);
    }

    #[test]
    fn pressure_duty_cycle() {
        let constant = FaultInjector::new(FaultPlan::none().with_dram_pressure(4096, 0));
        assert_eq!(constant.current_pressure(), 4096);
        let mut duty = FaultInjector::new(FaultPlan::none().with_dram_pressure(4096, 4));
        let on: Vec<bool> = (0..8)
            .map(|r| {
                duty.begin_round(r);
                duty.current_pressure() > 0
            })
            .collect();
        // period 4 => pressure on rounds 0,1 and off rounds 2,3 of each cycle.
        assert_eq!(on, vec![true, true, false, false, true, true, false, false]);
    }

    #[test]
    fn validate_rejects_bad_rates() {
        let bad = FaultPlan::none().with_sample_dropout(1.5, 0.0);
        assert!(matches!(bad.validate(), Err(HmError::InvalidConfig(_))));
        let nan = FaultPlan::none().with_telemetry_blackout(f64::NAN);
        assert!(nan.validate().is_err());
        let speedup = FaultPlan::none().with_degradation(Tier::Pm, 0, 0.5, 1.0);
        assert!(speedup.validate().is_err());
        let zero_bw = FaultPlan::none().with_degradation(Tier::Pm, 0, 1.0, 0.0);
        assert!(zero_bw.validate().is_err());
        let poison = FaultPlan::none().with_page_poison(2.0);
        assert!(poison.validate().is_err());
    }

    #[test]
    fn degradation_window_duty_cycle() {
        let plan = FaultPlan::none().with_degradation(Tier::Dram, 4, 1.5, 0.75);
        assert!(!plan.is_none());
        plan.validate().unwrap();
        let inj = FaultInjector::new(plan);
        let open: Vec<bool> = (0..8)
            .map(|r| inj.current_degradation(r).is_some())
            .collect();
        assert_eq!(
            open,
            vec![true, true, false, false, true, true, false, false]
        );
        assert_eq!(inj.current_degradation(0), Some((Tier::Dram, 1.5, 0.75)));
        // Constant degradation: period 0 keeps the window open forever.
        let constant =
            FaultInjector::new(FaultPlan::none().with_degradation(Tier::Pm, 0, 2.0, 0.5));
        assert!((0..16).all(|r| constant.current_degradation(r).is_some()));
    }

    #[test]
    fn poison_and_offline_draws_are_deterministic() {
        let plan = FaultPlan::none()
            .with_seed(7)
            .with_page_poison(0.5)
            .with_dram_offlining(3, 1 << 20);
        plan.validate().unwrap();
        assert!(!plan.is_none());
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        let mut strikes = 0;
        for r in 0..64 {
            assert_eq!(a.poison_strikes(r), b.poison_strikes(r));
            if a.poison_strikes(r) {
                strikes += 1;
                assert_eq!(a.poison_victim_index(r, 37), b.poison_victim_index(r, 37));
                assert!(a.poison_victim_index(r, 37) < 37);
            }
        }
        assert!(strikes > 10, "poison rate 0.5 hit only {strikes}/64 rounds");
        assert_eq!(a.offline_due(2), 0);
        assert_eq!(a.offline_due(3), 1 << 20);
        assert_eq!(a.offline_due(60), 1 << 20);
    }

    #[test]
    fn tenant_panic_is_pure_and_disarmable() {
        let plan = FaultPlan::none().with_tenant_panic(2);
        assert!(!plan.is_none());
        plan.validate().unwrap();
        let mut inj = FaultInjector::new(plan);
        // Non-latching: repeated probes of the same round all fire, other
        // rounds never do, and nothing mutates.
        assert!(!inj.panic_due(1));
        assert!(inj.panic_due(2));
        assert!(inj.panic_due(2));
        assert!(!inj.panic_due(3));
        assert!(!inj.crashed());
        inj.note_tenant_panic();
        assert_eq!(inj.stats().tenant_panics, 1);
        // Recovery disarms the panic like a crash.
        inj.disarm_crash();
        assert!(!inj.panic_due(2));
    }

    #[test]
    fn tenant_stall_window_survives_disarm() {
        let plan = FaultPlan::none().with_tenant_stall(3, 2);
        assert!(!plan.is_none());
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.stall_multiplier(2), 1.0);
        assert_eq!(inj.stall_multiplier(3), STALL_MULT);
        assert_eq!(inj.stall_multiplier(4), STALL_MULT);
        assert_eq!(inj.stall_multiplier(5), 1.0);
        // A stall models a hung dependency: recovery does NOT clear it.
        inj.disarm_crash();
        assert_eq!(inj.stall_multiplier(3), STALL_MULT);
        inj.note_stalled_round();
        assert_eq!(inj.stats().stalled_rounds, 1);
    }

    #[test]
    fn tenant_fault_state_roundtrips() {
        for plan in [
            FaultPlan::none().with_seed(11).with_tenant_panic(4),
            FaultPlan::none().with_seed(12).with_tenant_stall(1, 3),
        ] {
            let mut inj = FaultInjector::new(plan);
            inj.begin_round(2);
            inj.note_tenant_panic();
            inj.note_stalled_round();
            let mut text = String::new();
            inj.encode_state(&mut text);
            let mut r = crate::checkpoint::Reader::new(&text);
            let back = FaultInjector::decode_state(&mut r).unwrap();
            assert_eq!(back, inj);
            let mut text2 = String::new();
            back.encode_state(&mut text2);
            assert_eq!(text2, text);
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let mut inj =
            FaultInjector::new(FaultPlan::none().with_seed(5).with_sample_dropout(0.2, 0.0));
        inj.begin_round(0);
        let dropped = (0..10_000).filter(|_| inj.drop_pte_sample()).count();
        let rate = dropped as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.03, "observed dropout {rate}");
    }
}
