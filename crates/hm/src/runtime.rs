//! The task-parallel runtime: placement policies and the round executor.
//!
//! The executor runs an application round by round (task instance by task
//! instance). Within a round every task executes in parallel on real worker
//! threads and the round ends at the synchronisation barrier — so the round
//! time is the *slowest* task's time plus migration overhead, which is
//! exactly the quantity the paper's load-balance argument is about ("the
//! overall performance is hindered by the slowest task", §1).

use serde::{Deserialize, Serialize};

use crate::config::{HmConfig, Tier};
use crate::cost::{migration_time_ns, task_cost, PhaseCost, PlacementView};
use crate::object::ObjectId;
use crate::system::HmSystem;
use crate::telemetry::BandwidthTimeline;
use crate::trace::{ObjectAccess, TaskWork};
use crate::workload::Workload;

/// A data-placement policy driving the emulated HM during a run.
///
/// Software policies (MemoryOptimizer, Merchandiser) migrate pages through
/// [`HmSystem`]; the hardware policy (Memory Mode) instead overrides the
/// effective DRAM fraction per access with its cache model.
pub trait PlacementPolicy: Send {
    /// Policy name for reports.
    fn name(&self) -> String;

    /// One-time hook after objects are allocated: set the initial placement.
    /// Default: leave everything where the executor allocated it (PM).
    fn on_allocate(&mut self, sys: &mut HmSystem) {
        let _ = sys;
    }

    /// Hook before each round, after logical sizes are updated and the
    /// round's [`TaskWork`] is known. Page migrations performed here are
    /// charged as round overhead.
    fn before_round(&mut self, sys: &mut HmSystem, round: usize, works: &[TaskWork]) {
        let _ = (sys, round, works);
    }

    /// Hook after each round with the observed report (profiling counters
    /// are still live at this point). Migrations here are charged to the
    /// *next* round's start.
    fn after_round(&mut self, sys: &mut HmSystem, round: usize, report: &RoundReport) {
        let _ = (sys, round, report);
    }

    /// Override the effective DRAM fraction for one access stream
    /// (hardware-managed caching). `None` = use the page table placement.
    fn dram_fraction_override(&self, sys: &HmSystem, access: &ObjectAccess) -> Option<f64> {
        let _ = (sys, access);
        None
    }

    /// Did the policy run its *last* round in a degraded mode (fallback
    /// placement because profiles or samples were missing)? Recorded per
    /// round in [`RoundReport::degraded`].
    fn degraded(&self) -> bool {
        false
    }

    /// Serialize the policy's state for a checkpoint (quotas, refined α
    /// values, degradation level, ...). The blob is opaque to the WAL and
    /// fed back through [`restore_state`](Self::restore_state) on resume.
    /// Default: empty (stateless policy).
    fn save_state(&self) -> String {
        String::new()
    }

    /// Restore state written by [`save_state`](Self::save_state). Default:
    /// accept anything (stateless policy).
    fn restore_state(&mut self, blob: &str) -> Result<(), crate::system::HmError> {
        let _ = blob;
        Ok(())
    }

    /// Per-task predicted times for the round just planned (the §5
    /// `T_hybrid` predictions), indexed by task id — the straggler
    /// watchdog's deadlines. `None` disables the watchdog for the round
    /// (no prediction available: round 0, degraded mode, ...).
    fn round_deadlines_ns(&self, round: usize) -> Option<Vec<f64>> {
        let _ = round;
        None
    }

    /// A task overran its predicted deadline mid-round. The policy may
    /// re-run its placement algorithm restricted to the straggler's
    /// objects (emergency re-planning) and migrate pages; return `true`
    /// when it changed placement so the executor re-costs the remainder of
    /// the straggler. Return `false` to let the round finish as observed
    /// (e.g. hysteresis escalated to the degradation ladder instead).
    fn on_straggler(
        &mut self,
        sys: &mut HmSystem,
        round: usize,
        task: usize,
        observed_ns: f64,
        deadline_ns: f64,
    ) -> bool {
        let _ = (sys, round, task, observed_ns, deadline_ns);
        false
    }
}

impl<P: PlacementPolicy + ?Sized> PlacementPolicy for Box<P> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn on_allocate(&mut self, sys: &mut HmSystem) {
        (**self).on_allocate(sys)
    }
    fn before_round(&mut self, sys: &mut HmSystem, round: usize, works: &[TaskWork]) {
        (**self).before_round(sys, round, works)
    }
    fn after_round(&mut self, sys: &mut HmSystem, round: usize, report: &RoundReport) {
        (**self).after_round(sys, round, report)
    }
    fn dram_fraction_override(&self, sys: &HmSystem, access: &ObjectAccess) -> Option<f64> {
        (**self).dram_fraction_override(sys, access)
    }
    fn degraded(&self) -> bool {
        (**self).degraded()
    }
    fn save_state(&self) -> String {
        (**self).save_state()
    }
    fn restore_state(&mut self, blob: &str) -> Result<(), crate::system::HmError> {
        (**self).restore_state(blob)
    }
    fn round_deadlines_ns(&self, round: usize) -> Option<Vec<f64>> {
        (**self).round_deadlines_ns(round)
    }
    fn on_straggler(
        &mut self,
        sys: &mut HmSystem,
        round: usize,
        task: usize,
        observed_ns: f64,
        deadline_ns: f64,
    ) -> bool {
        (**self).on_straggler(sys, round, task, observed_ns, deadline_ns)
    }
}

/// The trivial policy: everything stays on the tier chosen at allocation.
#[derive(Debug, Clone)]
pub struct StaticPolicy {
    /// Tier every page is placed on at start.
    pub tier: Tier,
}

impl PlacementPolicy for StaticPolicy {
    fn name(&self) -> String {
        match self.tier {
            Tier::Pm => "PM-only".to_string(),
            Tier::Dram => "DRAM-only".to_string(),
        }
    }
    fn on_allocate(&mut self, sys: &mut HmSystem) {
        sys.place_everything(self.tier);
    }
}

/// Result of one task in one round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskResult {
    /// Task index.
    pub task: usize,
    /// Simulated execution time, ns.
    pub time_ns: f64,
    /// Cost breakdown.
    pub cost: PhaseCost,
}

/// Result of one round (one task instance per task).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundReport {
    /// Round index.
    pub round: usize,
    /// Per-task results.
    pub tasks: Vec<TaskResult>,
    /// Pages migrated by the policy for this round.
    pub migration_pages: u64,
    /// Migration *attempts* for this round, including retries of failed
    /// attempts. Equals `migration_pages` when no faults are injected;
    /// overhead is charged per attempt so retries cost wall time.
    pub migration_attempts: u64,
    /// Pages whose migration was abandoned after exhausting retries.
    pub failed_pages: u64,
    /// Did the policy place this round in a degraded (fallback) mode?
    pub degraded: bool,
    /// Straggler-watchdog firings this round (0 or 1: the watchdog
    /// corrects the single worst overrun per round).
    pub straggler_events: u64,
    /// Page-migration attempts spent by the watchdog's emergency
    /// re-planning (charged to the straggler's corrected time, not to
    /// `migration_ns`).
    pub watchdog_pages: u64,
    /// Migration epochs committed in this round (0 or 1: one epoch wraps
    /// the round's `before_round` migration batch).
    pub epoch_commits: u64,
    /// Migration epochs rolled back in this round (0 or 1).
    pub epoch_rollbacks: u64,
    /// Migration overhead, ns.
    pub migration_ns: f64,
    /// Round wall time: slowest task + migration overhead, ns.
    pub round_time_ns: f64,
}

impl RoundReport {
    /// Coefficient of variation of task times within the round (std/mean) —
    /// the per-round ingredient of the paper's A.C.V load-balance metric.
    pub fn cv(&self) -> f64 {
        let n = self.tasks.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.tasks.iter().map(|t| t.time_ns).sum::<f64>() / n as f64;
        if mean <= 0.0 {
            return 0.0;
        }
        let var = self
            .tasks
            .iter()
            .map(|t| (t.time_ns - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }

    /// Slowest task time, ns.
    pub fn max_task_ns(&self) -> f64 {
        self.tasks.iter().map(|t| t.time_ns).fold(0.0, f64::max)
    }
}

/// Full run report: all rounds under one policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Per-round reports.
    pub rounds: Vec<RoundReport>,
    /// Bandwidth telemetry of the run.
    pub timeline_samples: Vec<crate::telemetry::BandwidthSample>,
    /// Average DRAM bandwidth over the run, GB/s.
    pub avg_dram_gbps: f64,
    /// Average PM bandwidth over the run, GB/s.
    pub avg_pm_gbps: f64,
    /// Fault accounting: injected faults survived and how the run coped.
    /// All-zero when no fault plan is armed.
    pub fault: crate::fault::FaultSummary,
    /// Migration epochs that committed over the run.
    pub epoch_commits: u64,
    /// Migration epochs that ended torn and were rolled back over the run.
    pub epoch_rollbacks: u64,
}

impl RunReport {
    /// Total simulated time, ns.
    pub fn total_time_ns(&self) -> f64 {
        self.rounds.iter().map(|r| r.round_time_ns).sum()
    }

    /// Average coefficient of variation of task times across rounds — the
    /// paper's A.C.V metric (§7.2).
    pub fn acv(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| r.cv()).sum::<f64>() / self.rounds.len() as f64
    }

    /// All task times normalised to the slowest task of each round —
    /// the distribution Figure 5 plots.
    pub fn normalized_task_times(&self) -> Vec<f64> {
        let mut v = Vec::new();
        for r in &self.rounds {
            let m = r.max_task_ns();
            if m > 0.0 {
                v.extend(r.tasks.iter().map(|t| t.time_ns / m));
            }
        }
        v
    }

    /// Total pages migrated over the run.
    pub fn total_migration_pages(&self) -> u64 {
        self.rounds.iter().map(|r| r.migration_pages).sum()
    }
}

/// View combining the page table placement with a policy override.
struct PolicyView<'a> {
    sys: &'a HmSystem,
    policy: &'a dyn PolicyViewSource,
}

/// Object-safe subset of [`PlacementPolicy`] needed while tasks execute.
trait PolicyViewSource: Sync {
    fn override_fraction(&self, sys: &HmSystem, access: &ObjectAccess) -> Option<f64>;
}

struct PolicyRef<'p, P: PlacementPolicy + ?Sized>(&'p P);

impl<P: PlacementPolicy + Sync + ?Sized> PolicyViewSource for PolicyRef<'_, P> {
    fn override_fraction(&self, sys: &HmSystem, access: &ObjectAccess) -> Option<f64> {
        self.0.dram_fraction_override(sys, access)
    }
}

impl PlacementView for PolicyView<'_> {
    fn object_size(&self, object: ObjectId) -> u64 {
        self.sys.try_object(object).map(|o| o.size).unwrap_or(0)
    }
    fn dram_fraction(&self, access: &ObjectAccess) -> f64 {
        self.policy
            .override_fraction(self.sys, access)
            .unwrap_or_else(|| self.sys.dram_fraction(access.object))
    }
}

/// Runs a workload under a policy on an emulated HM system.
///
/// ```
/// use merch_hm::runtime::{Executor, StaticPolicy};
/// use merch_hm::workload::testutil::SkewedWorkload;
/// use merch_hm::page::PAGE_SIZE;
/// use merch_hm::{HmConfig, HmSystem, Tier};
///
/// let app = SkewedWorkload { tasks: 2, rounds: 3, base_accesses: 1e5, obj_bytes: 8 * PAGE_SIZE };
/// let sys = HmSystem::new(HmConfig::calibrated(64 * PAGE_SIZE, 1024 * PAGE_SIZE), 1);
/// let report = Executor::new(sys, app, StaticPolicy { tier: Tier::Pm }).run();
/// assert_eq!(report.rounds.len(), 3);
/// assert!(report.total_time_ns() > 0.0);
/// ```
pub struct Executor<W, P> {
    /// The emulated memory system.
    pub sys: HmSystem,
    /// The application.
    pub workload: W,
    /// The placement policy.
    pub policy: P,
    /// Bandwidth telemetry (100 µs bins by default).
    pub timeline: BandwidthTimeline,
    /// First telemetry bin not yet considered for blackout injection.
    blackout_cursor: usize,
    /// Reports of the rounds already driven by `try_run`/`run_supervised`.
    completed: Vec<RoundReport>,
    /// Next round `try_run`/`run_supervised` will execute.
    next_round: usize,
    /// Straggler watchdog; `None` (the default) disables it entirely and
    /// keeps every existing output byte-stable.
    watchdog: Option<WatchdogConfig>,
}

/// Configuration of the straggler watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Overrun tolerance: a task is a straggler when its simulated time
    /// exceeds `deadline × slack` (the §5 `T_hybrid` prediction scaled by
    /// this factor).
    pub slack: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self { slack: 1.25 }
    }
}

impl<W: Workload, P: PlacementPolicy + Sync> Executor<W, P> {
    /// Allocate the workload's objects on PM (the software-solution default:
    /// big-memory allocations land on the capacity tier and are migrated up)
    /// and let the policy adjust the initial placement. Panics if PM cannot
    /// hold the working set; use [`Executor::try_new`] to handle that.
    pub fn new(sys: HmSystem, workload: W, policy: P) -> Self {
        Self::try_new(sys, workload, policy)
            .expect("PM capacity must hold the workload working set")
    }

    /// Fallible constructor: returns `OutOfCapacity` instead of panicking
    /// when the workload's working set does not fit on PM.
    pub fn try_new(
        mut sys: HmSystem,
        workload: W,
        mut policy: P,
    ) -> Result<Self, crate::system::HmError> {
        let specs = workload.object_specs();
        sys.allocate_all(&specs, Tier::Pm)?;
        policy.on_allocate(&mut sys);
        Ok(Self {
            sys,
            workload,
            policy,
            timeline: BandwidthTimeline::new(100_000.0),
            blackout_cursor: 0,
            completed: Vec::new(),
            next_round: 0,
            watchdog: None,
        })
    }

    /// Enable the straggler watchdog.
    pub fn with_watchdog(mut self, config: WatchdogConfig) -> Self {
        self.watchdog = Some(config);
        self
    }

    /// Rebuild an executor from a [`Checkpoint`]: the placement state,
    /// telemetry, and completed rounds come from the snapshot (no
    /// re-allocation, no `on_allocate`); the policy is restored from the
    /// opaque blob; the workload — rebuilt by the caller with the same
    /// constructor seed — is fast-forwarded by replaying its `instance`
    /// calls for the completed rounds (stateful workloads like WarpX
    /// advance internal cursors there). The scripted crash is disarmed so
    /// the resumed run does not die at the same point again.
    pub fn resume(
        checkpoint: crate::checkpoint::Checkpoint,
        mut workload: W,
        mut policy: P,
    ) -> Result<Self, crate::system::HmError> {
        let crate::checkpoint::Checkpoint {
            next_round,
            blackout_cursor,
            mut sys,
            timeline,
            completed,
            policy_state,
            breaker: _,
        } = checkpoint;
        policy.restore_state(&policy_state)?;
        for round in 0..next_round {
            let _ = workload.instance(round, &sys);
        }
        sys.disarm_crash();
        Ok(Self {
            sys,
            workload,
            policy,
            timeline,
            blackout_cursor,
            completed,
            next_round,
            watchdog: None,
        })
    }

    /// The next round `try_run`/`run_supervised` will execute.
    pub fn next_round(&self) -> usize {
        self.next_round
    }

    /// Restore a checkpoint *into this executor* without rebuilding the
    /// workload: the snapshot must sit at the same round boundary this
    /// executor sits at (the supervisor checkpoints an Open tenant at its
    /// boundary — a scripted tenant panic fires before any mutation — so
    /// the workload cursor is already correct and no fast-forward runs).
    /// Placement state, telemetry, completed rounds, and the policy blob
    /// all come from the snapshot; one-shot scripted faults are disarmed
    /// like [`resume`](Self::resume) does. The service's Half-Open probe
    /// path uses this to prove the v6 round-trip is bit-identical.
    pub fn restore_in_place(
        &mut self,
        checkpoint: crate::checkpoint::Checkpoint,
    ) -> Result<(), crate::system::HmError> {
        let crate::checkpoint::Checkpoint {
            next_round,
            blackout_cursor,
            sys,
            timeline,
            completed,
            policy_state,
            breaker: _,
        } = checkpoint;
        if next_round != self.next_round {
            return Err(crate::system::HmError::CheckpointCorrupt(format!(
                "in-place restore at round {} from a checkpoint at round {next_round}",
                self.next_round
            )));
        }
        self.policy.restore_state(&policy_state)?;
        self.sys = sys;
        self.timeline = timeline;
        self.blackout_cursor = blackout_cursor;
        self.completed = completed;
        self.sys.disarm_crash();
        Ok(())
    }

    /// Snapshot the full supervised-execution state at the current round
    /// boundary.
    pub fn checkpoint(&self) -> crate::checkpoint::Checkpoint {
        crate::checkpoint::Checkpoint {
            next_round: self.next_round,
            blackout_cursor: self.blackout_cursor,
            sys: self.sys.clone(),
            timeline: self.timeline.clone(),
            completed: self.completed.clone(),
            policy_state: self.policy.save_state(),
            breaker: crate::checkpoint::BreakerFrame::default(),
        }
    }

    /// Run every task instance and return the report. Panics if a scripted
    /// crash fault fires; arm crashes only under [`try_run`](Self::try_run)
    /// or [`run_supervised`](Self::run_supervised).
    pub fn run(&mut self) -> RunReport {
        self.try_run()
            .expect("run failed; use try_run/run_supervised with crash fault plans")
    }

    /// Run every remaining task instance; `Err(HmError::Crashed)` when a
    /// scripted crash fault fires mid-run.
    pub fn try_run(&mut self) -> Result<RunReport, crate::system::HmError> {
        while self.step()?.is_some() {}
        Ok(self.report())
    }

    /// Execute exactly one round and record its report. Returns `Ok(None)`
    /// when every round has already run — the round-granular stepping API
    /// behind `try_run` and the chaos-soak oracle (which inspects system
    /// invariants between rounds). `Err(HmError::Crashed)` when a scripted
    /// crash fault fires inside the round.
    pub fn step(&mut self) -> Result<Option<&RoundReport>, crate::system::HmError> {
        if self.next_round >= self.workload.num_instances() {
            return Ok(None);
        }
        let report = self.run_round(self.next_round)?;
        if self.sys.crashed() {
            // The crash latched inside `after_round` migrations: the
            // process died before this round's report was persisted.
            return Err(crate::system::HmError::Crashed {
                round: self.next_round as u64,
            });
        }
        self.completed.push(report);
        self.next_round += 1;
        Ok(self.completed.last())
    }

    /// Supervised run: append a checkpoint record to `wal` at every round
    /// boundary (including the initial one, so a crash inside round 0
    /// recovers too). Checkpoint-write faults are retried with
    /// [`Backoff`](crate::backoff::Backoff) and skipped on exhaustion — see
    /// [`Wal::append`](crate::checkpoint::Wal::append); WAL accounting
    /// stays in `wal.stats` so the returned report is bit-identical to an
    /// unsupervised run of the same plan.
    pub fn run_supervised(
        &mut self,
        wal: &mut crate::checkpoint::Wal,
    ) -> Result<RunReport, crate::system::HmError> {
        let ck = self.checkpoint();
        wal.append(&ck, self.sys.fault_injector())?;
        while self.step()?.is_some() {
            let ck = self.checkpoint();
            wal.append(&ck, self.sys.fault_injector())?;
        }
        Ok(self.report())
    }

    /// Assemble the [`RunReport`] from the rounds completed so far.
    pub fn report(&self) -> RunReport {
        let stats = self.sys.fault_stats();
        let fault = crate::fault::FaultSummary {
            migration_attempts: self.sys.total_migration_attempts,
            migration_retries: stats.migration_retries,
            failed_pages: stats.failed_pages,
            dropped_pte_samples: stats.dropped_pte_samples,
            dropped_pmc_events: stats.dropped_pmc_events,
            blacked_out_bins: stats.blacked_out_bins,
            pressure_evictions: stats.pressure_evictions,
            degraded_rounds: self.completed.iter().filter(|r| r.degraded).count() as u64,
            pages_poisoned: stats.pages_poisoned,
            degraded_window_rounds: stats.degraded_window_rounds,
            offlined_bytes: stats.offlined_bytes,
            tenant_panics: stats.tenant_panics,
            stalled_rounds: stats.stalled_rounds,
        };
        RunReport {
            workload: self.workload.name().to_string(),
            policy: self.policy.name(),
            rounds: self.completed.clone(),
            timeline_samples: self.timeline.samples(),
            avg_dram_gbps: self.timeline.avg_dram_gbps(),
            avg_pm_gbps: self.timeline.avg_pm_gbps(),
            fault,
            epoch_commits: self.sys.epoch_commits,
            epoch_rollbacks: self.sys.epoch_rollbacks,
        }
    }

    /// Run a single round; exposed for policies that need fine-grained
    /// control in tests. `Err(HmError::Crashed)` when a scripted crash
    /// fault fires at this round's boundary or inside its migration batch.
    pub fn run_round(&mut self, round: usize) -> Result<RoundReport, crate::system::HmError> {
        // Scripted tenant panic: the job dies at this round's boundary,
        // before any mutation, so the executor the supervisor recovers is
        // still exactly at its checkpointable boundary state. The one
        // pre-panic write is the deterministic panic counter.
        if self.sys.panic_due(round as u64) {
            self.sys.note_tenant_panic();
            panic!("scripted tenant panic at round {round}");
        }
        // Scripted boundary crash: the process dies before any of this
        // round's mutations, so recovery replays the round from scratch.
        if self.sys.crash_at_round_start(round as u64) {
            return Err(crate::system::HmError::Crashed {
                round: round as u64,
            });
        }
        // New input: update logical object sizes and re-draw drifting
        // hot-page distributions.
        for (name, size) in self.workload.object_sizes(round) {
            if let Ok(id) = self.sys.object_by_name(&name) {
                self.sys.set_logical_size(id, size);
            }
        }
        for (name, skew) in self.workload.hot_page_drift(round) {
            if let Ok(id) = self.sys.object_by_name(&name) {
                let seed = (round as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) ^ id.0 as u64;
                self.sys.reassign_page_weights(id, skew, seed);
            }
        }
        let works = self.workload.instance(round, &self.sys);
        let concurrency = works.len();

        // Policy decisions + migrations before the barrier opens. Fault
        // injection (co-tenant pressure, failed-attempt retries) happens
        // inside this window, so its page traffic is charged as round
        // overhead alongside the policy's own migrations: overhead is
        // charged per *attempt*, which equals pages moved when no faults
        // are injected.
        let migrations_before = self.sys.total_migrations;
        let attempts_before = self.sys.total_migration_attempts;
        let failed_before = self.sys.fault_stats().failed_pages;
        self.sys.begin_round(round as u64);
        // The policy's migration batch runs inside a transactional epoch:
        // a torn batch (mid-migration crash, failure burst) rolls back to
        // the pre-epoch page table instead of committing a half-placement.
        // Pressure evictions (above) and watchdog/after_round moves (below)
        // are deliberately outside the epoch.
        self.sys.begin_epoch(round as u64);
        self.policy.before_round(&mut self.sys, round, &works);
        let epoch_outcome = self.sys.end_epoch();
        if self.sys.crashed() {
            // Scripted mid-migration crash: the batch died partway; the
            // epoch above already rolled it back, and the post-crash state
            // is discarded by recovery anyway.
            return Err(crate::system::HmError::Crashed {
                round: round as u64,
            });
        }
        let (epoch_commits, epoch_rollbacks) = match epoch_outcome {
            crate::epoch::EpochOutcome::Committed => (1, 0),
            crate::epoch::EpochOutcome::RolledBack => (0, 1),
            crate::epoch::EpochOutcome::Clean => (0, 0),
        };
        let migration_pages = self.sys.total_migrations - migrations_before;
        let migration_attempts = self.sys.total_migration_attempts - attempts_before;
        let failed_pages = self.sys.fault_stats().failed_pages - failed_before;
        // Tasks (and any in-round corrective costing below) execute under the
        // round's *active* configuration: when a device degradation window is
        // open, the degraded tier's latency/bandwidth curve applies for the
        // whole round. With no window open this is a clone of `sys.config`,
        // so the no-fault path stays bit-identical.
        let active = self.sys.active_config();
        let migration_ns = migration_time_ns(&active, migration_attempts);

        // Execute all tasks in parallel (real threads, simulated time).
        let mut results = execute_tasks(&self.sys, &active, &self.policy, &works, concurrency);

        // Record page-level accesses for the profilers.
        for (work, res) in works.iter().zip(&results) {
            debug_assert_eq!(work.task, res.task);
            for phase in &work.phases {
                for a in &phase.accesses {
                    let size = match self.sys.try_object(a.object) {
                        Ok(o) => o.size,
                        Err(_) => continue,
                    };
                    let mem = crate::trace::memory_accesses(a, size, self.sys.config.llc_bytes);
                    self.sys.record_accesses(a.object, mem);
                }
            }
        }

        // Straggler watchdog: compare each task's simulated time against
        // its predicted T_hybrid deadline (×slack). On the worst overrun,
        // give the policy one in-round correction shot (emergency re-run
        // of Algorithm 1 restricted to the straggler's objects); if it
        // migrated pages, charge the correction and re-cost the remainder
        // of the straggler under the new placement.
        let mut straggler_events = 0u64;
        let mut watchdog_pages = 0u64;
        if let Some(wd) = self.watchdog {
            if let Some(deadlines) = self.policy.round_deadlines_ns(round) {
                let mut worst: Option<(usize, f64)> = None;
                for (i, r) in results.iter().enumerate() {
                    let Some(&deadline) = deadlines.get(r.task) else {
                        continue;
                    };
                    if deadline > 0.0 && r.time_ns > deadline * wd.slack {
                        let ratio = r.time_ns / deadline;
                        if worst.is_none_or(|(_, w)| ratio > w) {
                            worst = Some((i, ratio));
                        }
                    }
                }
                if let Some((i, _)) = worst {
                    straggler_events = 1;
                    let task = results[i].task;
                    let observed = results[i].time_ns;
                    let deadline = deadlines[task];
                    let attempts_before = self.sys.total_migration_attempts;
                    let acted =
                        self.policy
                            .on_straggler(&mut self.sys, round, task, observed, deadline);
                    watchdog_pages = self.sys.total_migration_attempts - attempts_before;
                    if acted && watchdog_pages > 0 {
                        let correction_ns = migration_time_ns(&active, watchdog_pages);
                        let new_cost = {
                            let policy_ref = PolicyRef(&self.policy);
                            let view = PolicyView {
                                sys: &self.sys,
                                policy: &policy_ref,
                            };
                            task_cost(&active, &works[i], &view, concurrency)
                        };
                        // The straggler ran `detect_ns` before the watchdog
                        // fired; the remaining fraction re-runs at the
                        // corrected placement's speed.
                        let detect_ns = deadline * wd.slack;
                        let frac_done = (detect_ns / observed).min(1.0);
                        let corrected =
                            detect_ns + correction_ns + (1.0 - frac_done) * new_cost.time_ns;
                        if corrected < observed {
                            let old = results[i].cost;
                            let blend = |o: f64, n: f64| frac_done * o + (1.0 - frac_done) * n;
                            results[i].time_ns = corrected;
                            results[i].cost = PhaseCost {
                                time_ns: corrected,
                                dram_bytes: blend(old.dram_bytes, new_cost.dram_bytes),
                                pm_bytes: blend(old.pm_bytes, new_cost.pm_bytes),
                                dram_accesses: blend(old.dram_accesses, new_cost.dram_accesses),
                                pm_accesses: blend(old.pm_accesses, new_cost.pm_accesses),
                                compute_ns: blend(old.compute_ns, new_cost.compute_ns),
                            };
                        }
                    }
                }
            }
        }

        // Telemetry: tasks start together after migration overhead.
        let start = self.timeline.clock_ns + migration_ns;
        let mut max_time: f64 = 0.0;
        for r in &results {
            self.timeline
                .record_interval(start, r.time_ns, r.cost.dram_bytes, r.cost.pm_bytes);
            max_time = max_time.max(r.time_ns);
        }
        let mut round_time = max_time + migration_ns;
        // Scripted tenant stall: the round hangs for STALL_MULT× its real
        // time. Inflating before the telemetry advance keeps clocks, bins,
        // and the report consistent — and deterministic at any `--jobs`.
        let stall = self.sys.stall_multiplier(round as u64);
        if stall != 1.0 {
            round_time *= stall;
            self.sys.note_stalled_round();
        }
        self.timeline.advance(round_time);

        // Telemetry blackout: bins completed by this round may be lost.
        if self
            .sys
            .fault_plan()
            .is_some_and(|p| p.telemetry_blackout > 0.0)
        {
            let end_bin = ((self.timeline.clock_ns / self.timeline.bin_ns()).floor() as usize)
                .min(self.timeline.num_bins());
            for bin in self.blackout_cursor..end_bin {
                let lost = self
                    .sys
                    .fault_injector_mut()
                    .is_some_and(|f| f.blackout_bin(bin));
                if lost {
                    self.timeline.blackout_bin(bin);
                }
            }
            self.blackout_cursor = end_bin;
        }

        let report = RoundReport {
            round,
            tasks: results,
            migration_pages,
            migration_attempts,
            failed_pages,
            degraded: self.policy.degraded(),
            straggler_events,
            watchdog_pages,
            epoch_commits,
            epoch_rollbacks,
            migration_ns,
            round_time_ns: round_time,
        };
        self.policy.after_round(&mut self.sys, round, &report);
        Ok(report)
    }
}

/// Evaluate all task costs in parallel on real worker threads. `config` is
/// the round's active configuration — `sys.config` possibly degraded by an
/// open device fault window.
fn execute_tasks<P: PlacementPolicy + Sync>(
    sys: &HmSystem,
    config: &HmConfig,
    policy: &P,
    works: &[TaskWork],
    concurrency: usize,
) -> Vec<TaskResult> {
    let policy_ref = PolicyRef(policy);
    let view = PolicyView {
        sys,
        policy: &policy_ref,
    };
    let mut results: Vec<Option<TaskResult>> = (0..works.len()).map(|_| None).collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(works.len().max(1));
    let chunk = works.len().div_ceil(threads.max(1));
    crossbeam::thread::scope(|s| {
        for (w_chunk, r_chunk) in works.chunks(chunk).zip(results.chunks_mut(chunk)) {
            let view = &view;
            s.spawn(move |_| {
                for (w, slot) in w_chunk.iter().zip(r_chunk.iter_mut()) {
                    let cost = task_cost(config, w, view, concurrency);
                    *slot = Some(TaskResult {
                        task: w.task,
                        time_ns: cost.time_ns,
                        cost,
                    });
                }
            });
        }
    })
    .expect("task execution threads must not panic");
    results
        .into_iter()
        .map(|r| r.expect("all tasks executed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HmConfig;
    use crate::page::PAGE_SIZE;
    use crate::workload::testutil::SkewedWorkload;

    fn run_with(tier: Tier) -> RunReport {
        let sys = HmSystem::new(HmConfig::calibrated(4096 * PAGE_SIZE, 32768 * PAGE_SIZE), 1);
        let w = SkewedWorkload {
            tasks: 4,
            rounds: 3,
            base_accesses: 2e6,
            obj_bytes: 64 * PAGE_SIZE,
        };
        Executor::new(sys, w, StaticPolicy { tier }).run()
    }

    #[test]
    fn dram_only_faster_than_pm_only() {
        let pm = run_with(Tier::Pm);
        let dram = run_with(Tier::Dram);
        assert!(pm.total_time_ns() > dram.total_time_ns());
        assert_eq!(pm.rounds.len(), 3);
        assert_eq!(pm.rounds[0].tasks.len(), 4);
    }

    #[test]
    fn round_time_is_slowest_task() {
        let pm = run_with(Tier::Pm);
        for r in &pm.rounds {
            assert!((r.round_time_ns - (r.max_task_ns() + r.migration_ns)).abs() < 1e-6);
        }
    }

    #[test]
    fn skewed_workload_has_load_imbalance() {
        let pm = run_with(Tier::Pm);
        // Task 3 does 4× the accesses of task 0.
        let r = &pm.rounds[0];
        assert!(r.tasks[3].time_ns > 2.0 * r.tasks[0].time_ns);
        assert!(pm.acv() > 0.2, "A.C.V = {}", pm.acv());
    }

    #[test]
    fn normalized_times_at_most_one() {
        let pm = run_with(Tier::Pm);
        let v = pm.normalized_task_times();
        assert_eq!(v.len(), 12);
        assert!(v.iter().all(|&x| x > 0.0 && x <= 1.0 + 1e-12));
        assert!(v.iter().any(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn telemetry_records_bytes() {
        let pm = run_with(Tier::Pm);
        assert!(pm.avg_pm_gbps > 0.0);
        assert_eq!(pm.avg_dram_gbps, 0.0);
        let dram = run_with(Tier::Dram);
        assert!(dram.avg_dram_gbps > 0.0);
        assert_eq!(dram.avg_pm_gbps, 0.0);
    }

    #[test]
    fn profiling_counters_populated() {
        let sys = HmSystem::new(HmConfig::calibrated(4096 * PAGE_SIZE, 32768 * PAGE_SIZE), 1);
        let w = SkewedWorkload {
            tasks: 2,
            rounds: 1,
            base_accesses: 1e5,
            obj_bytes: 16 * PAGE_SIZE,
        };
        let mut ex = Executor::new(sys, w, StaticPolicy { tier: Tier::Pm });
        ex.run();
        let touched = ex
            .sys
            .page_table()
            .iter()
            .filter(|(_, p)| p.accessed)
            .count();
        assert!(touched > 0);
    }

    /// Policy that overrides every access to 100 % DRAM without migrating.
    struct FakeCache;
    impl PlacementPolicy for FakeCache {
        fn name(&self) -> String {
            "fake-cache".into()
        }
        fn dram_fraction_override(&self, _: &HmSystem, _: &ObjectAccess) -> Option<f64> {
            Some(1.0)
        }
    }

    #[test]
    fn override_beats_page_table() {
        let sys = HmSystem::new(HmConfig::calibrated(4096 * PAGE_SIZE, 32768 * PAGE_SIZE), 1);
        let w = SkewedWorkload {
            tasks: 2,
            rounds: 1,
            base_accesses: 2e6,
            obj_bytes: 64 * PAGE_SIZE,
        };
        let fake = Executor::new(
            HmSystem::new(sys.config.clone(), 1),
            SkewedWorkload {
                tasks: 2,
                rounds: 1,
                base_accesses: 2e6,
                obj_bytes: 64 * PAGE_SIZE,
            },
            FakeCache,
        )
        .run();
        let pm = Executor::new(sys, w, StaticPolicy { tier: Tier::Pm }).run();
        assert!(fake.total_time_ns() < pm.total_time_ns());
        // The override routes bytes to DRAM in telemetry too.
        assert!(fake.avg_dram_gbps > 0.0);
    }
}
