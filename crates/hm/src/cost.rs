//! The execution-time model of the emulated machine.
//!
//! Converts a task's phases plus the current data placement into simulated
//! execution time with a roofline-style model:
//!
//! * per tier, memory time is the max of a **latency term** (misses ×
//!   load-to-use latency / memory-level parallelism) and a **bandwidth
//!   term** (bytes / effective bandwidth, with read/write asymmetry and
//!   per-task bandwidth sharing);
//! * DRAM-side and PM-side memory time overlap partially
//!   ([`crate::config::HmConfig::tier_overlap`]);
//! * memory time overlaps with compute proportionally to how prefetchable
//!   the access mix is — the effect the paper's Figure 3 demonstrates
//!   (halving PM accesses cut NWChem-TC's Writeback phase by 47.5 % but
//!   Input Processing by only 26.2 %), and the reason Equation 2 needs the
//!   learned correlation function f(·) rather than linear interpolation.

use serde::{Deserialize, Serialize};

use crate::config::{HmConfig, Tier};
use crate::object::ObjectId;
use crate::trace::{bytes_for, memory_accesses, Phase, TaskWork};

/// Per-object placement view the cost model needs: object size and the
/// fraction of accesses served from DRAM. The DRAM fraction takes the whole
/// [`crate::trace::ObjectAccess`] so hardware-cache policies (Memory Mode) can condition
/// on the access pattern, not just the object.
pub trait PlacementView: Sync {
    /// Size of `object` in bytes (logical size of the current input).
    fn object_size(&self, object: ObjectId) -> u64;
    /// Fraction of this access stream served from DRAM (0..1).
    fn dram_fraction(&self, access: &crate::trace::ObjectAccess) -> f64;
}

/// Cost breakdown of one phase.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Simulated execution time, ns.
    pub time_ns: f64,
    /// Bytes transferred from/to DRAM.
    pub dram_bytes: f64,
    /// Bytes transferred from/to PM.
    pub pm_bytes: f64,
    /// Main-memory accesses served by DRAM.
    pub dram_accesses: f64,
    /// Main-memory accesses served by PM.
    pub pm_accesses: f64,
    /// Pure compute time, ns.
    pub compute_ns: f64,
}

impl PhaseCost {
    /// Total main-memory accesses.
    pub fn total_accesses(&self) -> f64 {
        self.dram_accesses + self.pm_accesses
    }

    /// DRAM share of accesses (`r_dram_acc` in Equation 2).
    pub fn dram_ratio(&self) -> f64 {
        let t = self.total_accesses();
        if t > 0.0 {
            self.dram_accesses / t
        } else {
            0.0
        }
    }

    /// Accumulate another phase's cost (time adds serially; phases of one
    /// task run back-to-back).
    pub fn accumulate(&mut self, other: &PhaseCost) {
        self.time_ns += other.time_ns;
        self.dram_bytes += other.dram_bytes;
        self.pm_bytes += other.pm_bytes;
        self.dram_accesses += other.dram_accesses;
        self.pm_accesses += other.pm_accesses;
        self.compute_ns += other.compute_ns;
    }
}

/// Effective per-task bandwidth share on a tier when `concurrency` tasks
/// contend: fair share of the socket peak, capped by what a single task's
/// load/store streams can draw.
fn bw_share(config: &HmConfig, concurrency: usize) -> f64 {
    (1.0 / concurrency.max(1) as f64).min(config.per_task_bw_cap)
}

/// Which roofline term binds a tier's memory time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Regime {
    /// Load-to-use latency × misses dominates (dependent accesses).
    LatencyBound,
    /// Bytes / effective bandwidth dominates (streaming).
    BandwidthBound,
    /// No traffic on this tier.
    Idle,
}

/// Diagnostic breakdown of one phase's cost (inspection / tests / docs).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PhaseCostDetail {
    /// The aggregate cost.
    pub cost: PhaseCost,
    /// Latency-term time per tier [DRAM, PM], ns.
    pub latency_ns: [f64; 2],
    /// Bandwidth-term time per tier [DRAM, PM], ns.
    pub bandwidth_ns: [f64; 2],
    /// Binding regime per tier [DRAM, PM].
    pub regime: [Regime; 2],
    /// Compute/memory overlap factor applied (0..1).
    pub overlap: f64,
}

/// [`phase_cost`] plus the roofline breakdown.
pub fn phase_cost_detail<V: PlacementView>(
    config: &HmConfig,
    phase: &Phase,
    view: &V,
    concurrency: usize,
) -> PhaseCostDetail {
    let (cost, lat, bw, overlap) = phase_cost_inner(config, phase, view, concurrency);
    let regime = [0, 1].map(|t| {
        if lat[t] <= 0.0 && bw[t] <= 0.0 {
            Regime::Idle
        } else if lat[t] >= bw[t] {
            Regime::LatencyBound
        } else {
            Regime::BandwidthBound
        }
    });
    PhaseCostDetail {
        cost,
        latency_ns: lat,
        bandwidth_ns: bw,
        regime,
        overlap,
    }
}

/// Compute the cost of one phase under the placement described by `view`,
/// with `concurrency` tasks sharing the memory system.
pub fn phase_cost<V: PlacementView>(
    config: &HmConfig,
    phase: &Phase,
    view: &V,
    concurrency: usize,
) -> PhaseCost {
    phase_cost_inner(config, phase, view, concurrency).0
}

fn phase_cost_inner<V: PlacementView>(
    config: &HmConfig,
    phase: &Phase,
    view: &V,
    concurrency: usize,
) -> (PhaseCost, [f64; 2], [f64; 2], f64) {
    let mut lat = [0.0f64; 2]; // [dram, pm] latency-term ns
    let mut bytes = [0.0f64; 2];
    let mut wr_bytes = [0.0f64; 2];
    let mut acc = [0.0f64; 2];
    let mut prefetch_weighted = 0.0f64;
    let mut total_mem = 0.0f64;

    for a in &phase.accesses {
        let size = view.object_size(a.object);
        let mem = memory_accesses(a, size, config.llc_bytes);
        if mem <= 0.0 {
            continue;
        }
        let r = view.dram_fraction(a).clamp(0.0, 1.0);
        let mlp = a.pattern.effective_mlp();
        let split = [mem * r, mem * (1.0 - r)];
        for (t, tier) in [Tier::Dram, Tier::Pm].into_iter().enumerate() {
            let p = config.tier(tier);
            let lat_ns = match a.pattern.latency_class() {
                merch_patterns::LatencyClass::Sequential => p.latency_seq_ns,
                merch_patterns::LatencyClass::Random => p.latency_rand_ns,
            };
            lat[t] += split[t] * lat_ns / mlp;
            let b = bytes_for(split[t]);
            bytes[t] += b;
            wr_bytes[t] += b * a.write_fraction;
            acc[t] += split[t];
        }
        prefetch_weighted += mem * a.pattern.prefetch_coverage();
        total_mem += mem;
    }

    let share = bw_share(config, concurrency);
    let mut tier_time = [0.0f64; 2];
    for (t, tier) in [Tier::Dram, Tier::Pm].into_iter().enumerate() {
        if bytes[t] <= 0.0 {
            continue;
        }
        let wf = wr_bytes[t] / bytes[t];
        let bw = config.tier(tier).mixed_bw_gbps(wf) * share; // GB/s == bytes/ns
        let bw_time = bytes[t] / bw;
        tier_time[t] = lat[t].max(bw_time);
    }

    let (hi, lo) = if tier_time[0] >= tier_time[1] {
        (tier_time[0], tier_time[1])
    } else {
        (tier_time[1], tier_time[0])
    };
    let mem_time = hi + (1.0 - config.tier_overlap) * lo;

    // Compute/memory overlap: prefetchable access mixes keep the pipeline
    // fed, dependent random accesses stall it.
    let overlap = if total_mem > 0.0 {
        prefetch_weighted / total_mem
    } else {
        1.0
    };
    let c = phase.compute_ns;
    let time_ns = c.max(mem_time) + (1.0 - overlap) * c.min(mem_time);

    let mut bw_term = [0.0f64; 2];
    for (t, tier) in [Tier::Dram, Tier::Pm].into_iter().enumerate() {
        if bytes[t] > 0.0 {
            let wf = wr_bytes[t] / bytes[t];
            bw_term[t] = bytes[t] / (config.tier(tier).mixed_bw_gbps(wf) * share);
        }
    }
    (
        PhaseCost {
            time_ns,
            dram_bytes: bytes[0],
            pm_bytes: bytes[1],
            dram_accesses: acc[0],
            pm_accesses: acc[1],
            compute_ns: c,
        },
        lat,
        bw_term,
        overlap,
    )
}

/// Cost of a whole task instance (phases run serially).
pub fn task_cost<V: PlacementView>(
    config: &HmConfig,
    work: &TaskWork,
    view: &V,
    concurrency: usize,
) -> PhaseCost {
    let mut total = PhaseCost::default();
    for phase in &work.phases {
        total.accumulate(&phase_cost(config, phase, view, concurrency));
    }
    total
}

/// Time to migrate `pages` pages, overlapped across the configured
/// migration parallelism.
pub fn migration_time_ns(config: &HmConfig, pages: u64) -> f64 {
    pages as f64 * config.page_migration_ns / config.migration_parallelism.max(1.0)
}

/// A fixed placement view backed by closures-free data: every object has
/// the same DRAM fraction. Useful for bounds (PM-only: 0.0, DRAM-only: 1.0)
/// and for the performance model's what-if queries.
#[derive(Debug, Clone)]
pub struct UniformPlacement {
    sizes: Vec<u64>,
    /// DRAM fraction applied to every object.
    pub dram_fraction: f64,
}

impl UniformPlacement {
    /// Build from object sizes (indexed by `ObjectId`).
    pub fn new(sizes: Vec<u64>, dram_fraction: f64) -> Self {
        Self {
            sizes,
            dram_fraction,
        }
    }
}

impl PlacementView for UniformPlacement {
    fn object_size(&self, object: ObjectId) -> u64 {
        self.sizes[object.0 as usize]
    }
    fn dram_fraction(&self, _access: &crate::trace::ObjectAccess) -> f64 {
        self.dram_fraction
    }
}

impl PlacementView for crate::system::HmSystem {
    fn object_size(&self, object: ObjectId) -> u64 {
        self.object(object).size
    }
    fn dram_fraction(&self, access: &crate::trace::ObjectAccess) -> f64 {
        // Resolves to the inherent page-table-backed method (inherent
        // methods take precedence over trait methods).
        crate::system::HmSystem::dram_fraction(self, access.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ObjectAccess;
    use merch_patterns::AccessPattern;

    fn config() -> HmConfig {
        HmConfig::default()
    }

    fn stream_phase(n: f64) -> Phase {
        Phase::new("p", 0.0).with_access(ObjectAccess::new(
            ObjectId(0),
            n,
            8,
            AccessPattern::Stream,
            0.0,
        ))
    }

    fn random_phase(n: f64) -> Phase {
        Phase::new("p", 0.0).with_access(ObjectAccess::new(
            ObjectId(0),
            n,
            8,
            AccessPattern::Random,
            0.0,
        ))
    }

    #[test]
    fn dram_faster_than_pm() {
        let cfg = config();
        let sizes = vec![1 << 30];
        let phase = stream_phase(1e7);
        let pm = phase_cost(&cfg, &phase, &UniformPlacement::new(sizes.clone(), 0.0), 12);
        let dram = phase_cost(&cfg, &phase, &UniformPlacement::new(sizes, 1.0), 12);
        assert!(pm.time_ns > dram.time_ns);
        let speedup = pm.time_ns / dram.time_ns;
        assert!(speedup > 1.5 && speedup < 6.0, "speedup {speedup}");
    }

    #[test]
    fn random_suffers_more_on_pm_than_stream() {
        let cfg = config();
        let sizes = vec![1 << 30];
        let s = stream_phase(1e7);
        let r = random_phase(1e6);
        let ratio = |p: &Phase| {
            let pm = phase_cost(&cfg, p, &UniformPlacement::new(sizes.clone(), 0.0), 12);
            let d = phase_cost(&cfg, p, &UniformPlacement::new(sizes.clone(), 1.0), 12);
            pm.time_ns / d.time_ns
        };
        assert!(
            ratio(&r) > ratio(&s),
            "random PM penalty {} should exceed stream {}",
            ratio(&r),
            ratio(&s)
        );
    }

    #[test]
    fn time_monotone_in_dram_fraction() {
        let cfg = config();
        let sizes = vec![1 << 30];
        let phase = random_phase(2e6);
        let mut last = f64::INFINITY;
        for i in 0..=10 {
            let r = i as f64 / 10.0;
            let c = phase_cost(&cfg, &phase, &UniformPlacement::new(sizes.clone(), r), 12);
            assert!(
                c.time_ns <= last * (1.0 + 1e-9) + 1e-6,
                "time should not increase with DRAM fraction (r={r}): {} > {last}",
                c.time_ns
            );
            last = c.time_ns;
        }
    }

    #[test]
    fn hybrid_time_bounded_by_endpoints() {
        let cfg = config();
        let sizes = vec![1 << 28];
        let phase = stream_phase(5e6);
        let pm = phase_cost(&cfg, &phase, &UniformPlacement::new(sizes.clone(), 0.0), 8).time_ns;
        let dram = phase_cost(&cfg, &phase, &UniformPlacement::new(sizes.clone(), 1.0), 8).time_ns;
        for i in 1..10 {
            let r = i as f64 / 10.0;
            let t = phase_cost(&cfg, &phase, &UniformPlacement::new(sizes.clone(), r), 8).time_ns;
            assert!(t <= pm + 1e-9 && t >= dram - 1e-9);
        }
    }

    #[test]
    fn nonlinearity_hybrid_below_linear_interpolation() {
        // With partial tier overlap the hybrid point beats the linear mix —
        // the effect f(·) must learn.
        let cfg = config();
        let sizes = vec![1 << 30];
        let phase = stream_phase(1e7);
        let pm = phase_cost(&cfg, &phase, &UniformPlacement::new(sizes.clone(), 0.0), 12).time_ns;
        let dram = phase_cost(&cfg, &phase, &UniformPlacement::new(sizes.clone(), 1.0), 12).time_ns;
        let half = phase_cost(&cfg, &phase, &UniformPlacement::new(sizes.clone(), 0.5), 12).time_ns;
        let linear = 0.5 * pm + 0.5 * dram;
        assert!(half < linear, "hybrid {half} vs linear {linear}");
    }

    #[test]
    fn compute_bound_phase_insensitive_to_placement() {
        let cfg = config();
        let sizes = vec![1 << 20];
        let mut phase = stream_phase(1e3);
        phase.compute_ns = 1e9;
        let pm = phase_cost(&cfg, &phase, &UniformPlacement::new(sizes.clone(), 0.0), 4).time_ns;
        let dram = phase_cost(&cfg, &phase, &UniformPlacement::new(sizes, 1.0), 4).time_ns;
        assert!((pm - dram).abs() / pm < 0.05, "pm {pm} dram {dram}");
    }

    #[test]
    fn contention_slows_bandwidth_bound_phases() {
        let cfg = config();
        let sizes = vec![1 << 30];
        let phase = stream_phase(3e7);
        let solo = phase_cost(&cfg, &phase, &UniformPlacement::new(sizes.clone(), 0.0), 1).time_ns;
        let crowded = phase_cost(&cfg, &phase, &UniformPlacement::new(sizes, 0.0), 24).time_ns;
        assert!(crowded > solo);
    }

    #[test]
    fn write_heavy_pm_slower_than_read_heavy() {
        let cfg = config();
        let sizes = vec![1 << 30];
        let mk = |wf: f64| {
            Phase::new("p", 0.0).with_access(ObjectAccess::new(
                ObjectId(0),
                2e7,
                8,
                AccessPattern::Stream,
                wf,
            ))
        };
        let rd = phase_cost(
            &cfg,
            &mk(0.0),
            &UniformPlacement::new(sizes.clone(), 0.0),
            12,
        )
        .time_ns;
        let wr = phase_cost(&cfg, &mk(1.0), &UniformPlacement::new(sizes, 0.0), 12).time_ns;
        assert!(wr > rd * 1.5, "write {wr} vs read {rd}");
    }

    #[test]
    fn task_cost_accumulates_phases() {
        let cfg = config();
        let view = UniformPlacement::new(vec![1 << 24], 0.5);
        let w = TaskWork::new(0)
            .with_phase(stream_phase(1e6))
            .with_phase(random_phase(1e5));
        let total = task_cost(&cfg, &w, &view, 4);
        let p0 = phase_cost(&cfg, &w.phases[0], &view, 4);
        let p1 = phase_cost(&cfg, &w.phases[1], &view, 4);
        assert!((total.time_ns - (p0.time_ns + p1.time_ns)).abs() < 1e-6);
        assert!(
            (total.total_accesses() - (p0.total_accesses() + p1.total_accesses())).abs() < 1e-6
        );
    }

    #[test]
    fn migration_time_scales_with_pages() {
        let cfg = config();
        assert_eq!(migration_time_ns(&cfg, 0), 0.0);
        assert!(migration_time_ns(&cfg, 1000) > migration_time_ns(&cfg, 10));
    }

    #[test]
    fn detail_identifies_regimes() {
        let cfg = config();
        // Dependent random chain on PM: latency-bound.
        let r = phase_cost_detail(
            &cfg,
            &random_phase(1e6),
            &UniformPlacement::new(vec![1 << 30], 0.0),
            2,
        );
        assert_eq!(r.regime[1], Regime::LatencyBound);
        assert_eq!(r.regime[0], Regime::Idle);
        // Heavy stream with many contenders: bandwidth-bound.
        let s = phase_cost_detail(
            &cfg,
            &stream_phase(3e7),
            &UniformPlacement::new(vec![1 << 30], 0.0),
            24,
        );
        assert_eq!(s.regime[1], Regime::BandwidthBound);
        // Detail's aggregate equals the plain cost.
        let plain = phase_cost(
            &cfg,
            &stream_phase(3e7),
            &UniformPlacement::new(vec![1 << 30], 0.0),
            24,
        );
        assert_eq!(s.cost.time_ns, plain.time_ns);
        // Overlap reflects stream prefetchability.
        assert!(s.overlap > 0.9);
        assert!(r.overlap < 0.1);
    }

    #[test]
    fn dram_ratio_of_cost() {
        let cfg = config();
        let c = phase_cost(
            &cfg,
            &stream_phase(1e6),
            &UniformPlacement::new(vec![1 << 24], 0.25),
            4,
        );
        assert!((c.dram_ratio() - 0.25).abs() < 1e-9);
    }
}
